/**
 * @file
 * Deterministic stats registry: named counters, gauges and fixed-bucket
 * histograms with a gem5-style formatted dump.
 *
 * Determinism contract (what makes the dump diffable across runs and
 * thread counts):
 *
 *  - **Sorted iteration.** Stats live in ordered maps keyed by name;
 *    every dump and JSON export walks them in sorted-name order. No
 *    unordered containers anywhere (per the mithra-lint rules).
 *  - **Integer accumulation.** Counters and histogram buckets are
 *    64-bit integers, so concurrent accumulation is exact regardless
 *    of interleaving: the merged total is bitwise identical at any
 *    MITHRA_THREADS. Counters are striped across cache-line-padded
 *    slots (indexed by a stable per-thread ordinal) to keep hot-path
 *    increments contention-free; reads merge the stripes in slot-index
 *    order.
 *  - **No order-dependent floats.** Histograms expose per-bucket
 *    counts plus min/max (order-independent) and deliberately no
 *    running double sum — a cross-thread float reduction would break
 *    the bitwise guarantee. Gauges are last-write-wins doubles meant
 *    to be set from serial sections (e.g. "table occupancy after
 *    training").
 *
 * Hot paths register through the MITHRA_COUNT / MITHRA_GAUGE_SET /
 * MITHRA_HIST macros in telemetry/telemetry.hh, which cache the stat
 * reference in a function-local static and compile to nothing when
 * MITHRA_TELEMETRY is OFF.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace mithra::telemetry
{

/** Stripes per counter; a power of two so the modulo is a mask. */
constexpr std::size_t counterStripes = 16;

/** Stable small ordinal of the calling thread (0, 1, 2, ... in first-use order). */
std::size_t threadOrdinal();

/** A monotonically increasing 64-bit event count. */
class Counter
{
  public:
    /**
     * `isVolatile` marks values that legitimately vary run to run or
     * with the thread count (e.g. chunk-placement statistics); dumps
     * and reports exclude them unless explicitly asked, preserving
     * the bitwise determinism guarantee for everything else.
     */
    Counter(std::string name, std::string description,
            bool isVolatile = false);

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::int64_t delta)
    {
        slots[threadOrdinal() & (counterStripes - 1)].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    /** Merged total, summed in stripe-index order (exact: integers). */
    std::int64_t value() const;

    /** Zero every stripe (tests and multi-run harnesses). */
    void reset();

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDescription; }
    bool isVolatile() const { return volatileStat; }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::int64_t> value{0};
    };

    std::string statName;
    std::string statDescription;
    bool volatileStat;
    std::array<Slot, counterStripes> slots;
};

/** A last-write-wins double (set from serial sections). */
class Gauge
{
  public:
    Gauge(std::string name, std::string description);

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double value)
    {
        gaugeValue.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return gaugeValue.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDescription; }

  private:
    std::string statName;
    std::string statDescription;
    std::atomic<double> gaugeValue{0.0};
};

/**
 * Fixed-bucket linear histogram over [lo, hi): `bucketCount` equal
 * buckets plus underflow/overflow. Bucket b covers
 * [lo + b*width, lo + (b+1)*width); a sample equal to `hi` lands in
 * the overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::string name, std::string description, double lo,
              double hi, std::size_t bucketCount);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void record(double value);

    std::int64_t samples() const;
    std::int64_t bucketCountAt(std::size_t bucket) const;
    std::int64_t underflows() const;
    std::int64_t overflows() const;
    /** Smallest / largest recorded sample (0 when empty). */
    double minSample() const;
    double maxSample() const;

    double lowerBound() const { return lo; }
    double upperBound() const { return hi; }
    std::size_t numBuckets() const { return buckets.size(); }
    double bucketWidth() const;

    void reset();

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDescription; }

  private:
    std::string statName;
    std::string statDescription;
    double lo;
    double hi;
    std::vector<std::atomic<std::int64_t>> buckets;
    std::atomic<std::int64_t> underflowCount{0};
    std::atomic<std::int64_t> overflowCount{0};
    std::atomic<std::int64_t> sampleCount{0};
    // min/max via CAS loops; order-independent, so still deterministic.
    std::atomic<double> minValue;
    std::atomic<double> maxValue;
};

/**
 * The named-stat registry. One process-wide instance backs the macro
 * layer (global()); tests may construct private instances.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** The process-wide registry the MITHRA_* stat macros feed. */
    static StatsRegistry &global();

    /**
     * Strict registration: MITHRA_EXPECTS the name is not yet taken by
     * any stat kind. Returned references stay valid for the registry's
     * lifetime.
     */
    Counter &addCounter(const std::string &name,
                        const std::string &description = "",
                        bool isVolatile = false);
    Gauge &addGauge(const std::string &name,
                    const std::string &description = "");
    Histogram &addHistogram(const std::string &name,
                            const std::string &description, double lo,
                            double hi, std::size_t bucketCount);

    /**
     * Get-or-create lookup used by the macro layer; MITHRA_EXPECTS the
     * existing stat (if any) has the requested kind (and, for
     * histograms, identical bucketing).
     */
    Counter &counter(const std::string &name, bool isVolatile = false);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t bucketCount);

    /** Lookups without creation; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * gem5-style text dump in sorted-name order. Deterministic: same
     * recorded values produce the same bytes at any thread count.
     * Volatile stats appear only when `includeVolatile` is set.
     */
    std::string dump(bool includeVolatile = false) const;

    /** All stats as a JSON object (same determinism as dump()). */
    Json toJson(bool includeVolatile = false) const;

    /** Zero every registered stat (registrations stay). */
    void resetValues();

    std::size_t statCount() const;

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace mithra::telemetry
