#include "telemetry/stats.hh"

#include <cstdio>
#include <limits>

#include "common/contracts.hh"
#include "common/format.hh"

namespace mithra::telemetry
{

namespace
{

std::size_t
nextThreadOrdinal()
{
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void
atomicMin(std::atomic<double> &slot, double value)
{
    double current = slot.load(std::memory_order_relaxed);
    while (value < current
           && !slot.compare_exchange_weak(current, value,
                                          std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &slot, double value)
{
    double current = slot.load(std::memory_order_relaxed);
    while (value > current
           && !slot.compare_exchange_weak(current, value,
                                          std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t
threadOrdinal()
{
    thread_local const std::size_t ordinal = nextThreadOrdinal();
    return ordinal;
}

Counter::Counter(std::string name, std::string description,
                 bool isVolatile)
    : statName(std::move(name)),
      statDescription(std::move(description)),
      volatileStat(isVolatile)
{
}

std::int64_t
Counter::value() const
{
    std::int64_t total = 0;
    for (const Slot &slot : slots)
        total += slot.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (Slot &slot : slots)
        slot.value.store(0, std::memory_order_relaxed);
}

Gauge::Gauge(std::string name, std::string description)
    : statName(std::move(name)), statDescription(std::move(description))
{
}

Histogram::Histogram(std::string name, std::string description,
                     double loIn, double hiIn, std::size_t bucketCount)
    : statName(std::move(name)),
      statDescription(std::move(description)),
      lo(loIn),
      hi(hiIn),
      buckets(bucketCount),
      minValue(std::numeric_limits<double>::infinity()),
      maxValue(-std::numeric_limits<double>::infinity())
{
    MITHRA_EXPECTS(bucketCount > 0,
                   "histogram needs at least one bucket: ", statName);
    MITHRA_EXPECTS(hi > lo, "histogram range is empty: [", lo, ", ", hi,
                   ") for ", statName);
}

double
Histogram::bucketWidth() const
{
    return (hi - lo) / static_cast<double>(buckets.size());
}

void
Histogram::record(double value)
{
    sampleCount.fetch_add(1, std::memory_order_relaxed);
    atomicMin(minValue, value);
    atomicMax(maxValue, value);
    if (value < lo) {
        underflowCount.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (value >= hi) {
        overflowCount.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const auto bucket = static_cast<std::size_t>(
        (value - lo) / bucketWidth());
    const std::size_t clamped =
        bucket < buckets.size() ? bucket : buckets.size() - 1;
    buckets[clamped].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t
Histogram::samples() const
{
    return sampleCount.load(std::memory_order_relaxed);
}

std::int64_t
Histogram::bucketCountAt(std::size_t bucket) const
{
    MITHRA_EXPECTS(bucket < buckets.size(), "bucket index ", bucket,
                   " out of range for ", statName);
    return buckets[bucket].load(std::memory_order_relaxed);
}

std::int64_t
Histogram::underflows() const
{
    return underflowCount.load(std::memory_order_relaxed);
}

std::int64_t
Histogram::overflows() const
{
    return overflowCount.load(std::memory_order_relaxed);
}

double
Histogram::minSample() const
{
    return samples() ? minValue.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::maxSample() const
{
    return samples() ? maxValue.load(std::memory_order_relaxed) : 0.0;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
    underflowCount.store(0, std::memory_order_relaxed);
    overflowCount.store(0, std::memory_order_relaxed);
    sampleCount.store(0, std::memory_order_relaxed);
    minValue.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    maxValue.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
}

StatsRegistry &
StatsRegistry::global()
{
    // Intentionally immortal (never destructed): function-local static
    // stat references cached by the MITHRA_* macros in other
    // translation units may be hit from destructors during static
    // teardown.
    static StatsRegistry *registry = new StatsRegistry;
    return *registry;
}

namespace
{

/** The name is free across every stat kind of the registry. */
template <typename A, typename B, typename C>
bool
nameFree(const std::string &name, const A &a, const B &b, const C &c)
{
    return !a.count(name) && !b.count(name) && !c.count(name);
}

} // namespace

Counter &
StatsRegistry::addCounter(const std::string &name,
                          const std::string &description,
                          bool isVolatile)
{
    std::lock_guard<std::mutex> lock(mutex);
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "duplicate stat registration: ", name);
    auto counter = std::make_unique<Counter>(name, description,
                                             isVolatile);
    Counter &ref = *counter;
    counters.emplace(name, std::move(counter));
    return ref;
}

Gauge &
StatsRegistry::addGauge(const std::string &name,
                        const std::string &description)
{
    std::lock_guard<std::mutex> lock(mutex);
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "duplicate stat registration: ", name);
    auto gauge = std::make_unique<Gauge>(name, description);
    Gauge &ref = *gauge;
    gauges.emplace(name, std::move(gauge));
    return ref;
}

Histogram &
StatsRegistry::addHistogram(const std::string &name,
                            const std::string &description, double lo,
                            double hi, std::size_t bucketCount)
{
    std::lock_guard<std::mutex> lock(mutex);
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "duplicate stat registration: ", name);
    auto histogram = std::make_unique<Histogram>(name, description, lo,
                                                 hi, bucketCount);
    Histogram &ref = *histogram;
    histograms.emplace(name, std::move(histogram));
    return ref;
}

Counter &
StatsRegistry::counter(const std::string &name, bool isVolatile)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = counters.find(name);
    if (it != counters.end())
        return *it->second;
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "stat `", name, "' exists with a different kind");
    auto created = std::make_unique<Counter>(name, "", isVolatile);
    Counter &ref = *created;
    counters.emplace(name, std::move(created));
    return ref;
}

Gauge &
StatsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = gauges.find(name);
    if (it != gauges.end())
        return *it->second;
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "stat `", name, "' exists with a different kind");
    auto created = std::make_unique<Gauge>(name, "");
    Gauge &ref = *created;
    gauges.emplace(name, std::move(created));
    return ref;
}

Histogram &
StatsRegistry::histogram(const std::string &name, double lo, double hi,
                         std::size_t bucketCount)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = histograms.find(name);
    if (it != histograms.end()) {
        Histogram &existing = *it->second;
        MITHRA_EXPECTS(existing.lowerBound() == lo
                           && existing.upperBound() == hi
                           && existing.numBuckets() == bucketCount,
                       "histogram `", name,
                       "' re-requested with different bucketing");
        return existing;
    }
    MITHRA_EXPECTS(nameFree(name, counters, gauges, histograms),
                   "stat `", name, "' exists with a different kind");
    auto created = std::make_unique<Histogram>(name, "", lo, hi,
                                               bucketCount);
    Histogram &ref = *created;
    histograms.emplace(name, std::move(created));
    return ref;
}

const Counter *
StatsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = counters.find(name);
    return it == counters.end() ? nullptr : it->second.get();
}

const Gauge *
StatsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = gauges.find(name);
    return it == gauges.end() ? nullptr : it->second.get();
}

const Histogram *
StatsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : it->second.get();
}

namespace
{

void
appendStatLine(std::string &out, const std::string &name,
               const std::string &value, const std::string &description)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-44s %16s", name.c_str(),
                  value.c_str());
    out += buf;
    if (!description.empty()) {
        out += "  # ";
        out += description;
    }
    out.push_back('\n');
}

std::string
counterText(std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    std::string text = buf;
    // Exact value first; the human-scale rendering rides along once it
    // stops being readable at a glance.
    if (value >= 10000)
        text += " (" + fmtCount(static_cast<double>(value)) + ")";
    return text;
}

std::string
gaugeText(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

} // namespace

std::string
StatsRegistry::dump(bool includeVolatile) const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string out;
    out += "---------- Begin MITHRA Statistics ----------\n";
    for (const auto &[name, counter] : counters) {
        if (counter->isVolatile() && !includeVolatile)
            continue;
        appendStatLine(out, name, counterText(counter->value()),
                       counter->description());
    }
    for (const auto &[name, gauge] : gauges) {
        appendStatLine(out, name, gaugeText(gauge->value()),
                       gauge->description());
    }
    for (const auto &[name, histogram] : histograms) {
        const std::int64_t samples = histogram->samples();
        appendStatLine(out, name + "::samples", counterText(samples),
                       histogram->description());
        if (!samples)
            continue;
        appendStatLine(out, name + "::min",
                       gaugeText(histogram->minSample()), "");
        appendStatLine(out, name + "::max",
                       gaugeText(histogram->maxSample()), "");
        if (histogram->underflows()) {
            appendStatLine(out, name + "::underflows",
                           counterText(histogram->underflows()), "");
        }
        const double width = histogram->bucketWidth();
        for (std::size_t b = 0; b < histogram->numBuckets(); ++b) {
            const std::int64_t count = histogram->bucketCountAt(b);
            if (!count)
                continue;
            char edge[96];
            std::snprintf(
                edge, sizeof(edge), "::[%.6g,%.6g)",
                histogram->lowerBound()
                    + width * static_cast<double>(b),
                histogram->lowerBound()
                    + width * static_cast<double>(b + 1));
            appendStatLine(out, name + edge,
                           counterText(count) + " "
                               + fmtPct(100.0
                                        * static_cast<double>(count)
                                        / static_cast<double>(samples)),
                           "");
        }
        if (histogram->overflows()) {
            appendStatLine(out, name + "::overflows",
                           counterText(histogram->overflows()), "");
        }
    }
    out += "---------- End MITHRA Statistics ----------\n";
    return out;
}

Json
StatsRegistry::toJson(bool includeVolatile) const
{
    std::lock_guard<std::mutex> lock(mutex);
    Json::Object countersJson;
    for (const auto &[name, counter] : counters) {
        if (counter->isVolatile() && !includeVolatile)
            continue;
        countersJson.emplace(name, Json(counter->value()));
    }

    Json::Object gaugesJson;
    for (const auto &[name, gauge] : gauges)
        gaugesJson.emplace(name, Json(gauge->value()));

    Json::Object histogramsJson;
    for (const auto &[name, histogram] : histograms) {
        Json::Array bucketCounts;
        for (std::size_t b = 0; b < histogram->numBuckets(); ++b)
            bucketCounts.emplace_back(histogram->bucketCountAt(b));
        Json::Object entry;
        entry.emplace("lo", Json(histogram->lowerBound()));
        entry.emplace("hi", Json(histogram->upperBound()));
        entry.emplace("buckets", Json(std::move(bucketCounts)));
        entry.emplace("underflows", Json(histogram->underflows()));
        entry.emplace("overflows", Json(histogram->overflows()));
        entry.emplace("samples", Json(histogram->samples()));
        entry.emplace("min", Json(histogram->minSample()));
        entry.emplace("max", Json(histogram->maxSample()));
        histogramsJson.emplace(name, Json(std::move(entry)));
    }

    Json::Object stats;
    stats.emplace("counters", Json(std::move(countersJson)));
    stats.emplace("gauges", Json(std::move(gaugesJson)));
    stats.emplace("histograms", Json(std::move(histogramsJson)));
    return Json(std::move(stats));
}

void
StatsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, counter] : counters)
        counter->reset();
    for (const auto &[name, gauge] : gauges)
        gauge->reset();
    for (const auto &[name, histogram] : histograms)
        histogram->reset();
}

std::size_t
StatsRegistry::statCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters.size() + gauges.size() + histograms.size();
}

} // namespace mithra::telemetry
