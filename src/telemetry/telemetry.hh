/**
 * @file
 * The macro layer every subsystem instruments through.
 *
 *  MITHRA_SPAN("npu.train.epoch");     — scoped trace span: wall/CPU
 *      time + invocation count for the enclosing scope, Chrome-trace
 *      exportable (see telemetry/span.hh).
 *  MITHRA_COUNT("sim.accept", n);      — add n to a named counter.
 *  MITHRA_COUNT_DYNAMIC(name, n);      — like MITHRA_COUNT but for a
 *      name built at runtime (per-shard counters). No static site
 *      caching: every hit is one registry lookup, so keep it off
 *      per-element hot paths — merge/summary points only.
 *  MITHRA_GAUGE_SET("hw.density", d);  — set a last-write-wins gauge.
 *  MITHRA_HIST("npu.mse", 0, 1, 20, v) — record v into a fixed-bucket
 *      histogram over [0, 1) with 20 buckets.
 *
 * Each macro resolves its stat once (function-local static reference)
 * and then costs one relaxed atomic RMW per hit — cheap enough for
 * per-chunk accounting, still too much for the innermost arithmetic
 * loops; instrument at phase/bulk granularity there (pass the bulk
 * count to MITHRA_COUNT instead of counting per element).
 *
 * With the CMake option MITHRA_TELEMETRY=OFF every macro compiles to a
 * no-op; condition arguments stay parsed (unevaluated) so
 * instrumentation cannot bit-rot, mirroring common/contracts.hh.
 *
 * This header defines only macros (which expand to fully qualified
 * ::mithra::telemetry names), so it opens no namespace itself.
 * mithra-lint: allow(namespace-mithra)
 */

#pragma once

// MITHRA_TELEMETRY is defined (=1) by the build system when the
// telemetry option is ON (the default).
#if defined(MITHRA_TELEMETRY) && MITHRA_TELEMETRY
#define MITHRA_TELEMETRY_ENABLED 1
#else
#define MITHRA_TELEMETRY_ENABLED 0
#endif

#include "telemetry/run_report.hh"
#include "telemetry/span.hh"
#include "telemetry/stats.hh"

#define MITHRA_TELEMETRY_CAT2_(a, b) a##b
#define MITHRA_TELEMETRY_CAT_(a, b) MITHRA_TELEMETRY_CAT2_(a, b)

#if MITHRA_TELEMETRY_ENABLED

/** Time the enclosing scope under the given span name. */
#define MITHRA_SPAN(name)                                                   \
    static ::mithra::telemetry::SpanSite &MITHRA_TELEMETRY_CAT_(            \
        mithraSpanSite_, __LINE__) =                                        \
        ::mithra::telemetry::SpanRegistry::global().site(name);             \
    const ::mithra::telemetry::ScopedSpan MITHRA_TELEMETRY_CAT_(            \
        mithraSpan_, __LINE__)(MITHRA_TELEMETRY_CAT_(mithraSpanSite_,       \
                                                     __LINE__))

/** Add `delta` to the counter `name`. */
#define MITHRA_COUNT(name, delta)                                           \
    do {                                                                    \
        static ::mithra::telemetry::Counter &mithraCounter_ =               \
            ::mithra::telemetry::StatsRegistry::global().counter(name);     \
        mithraCounter_.add(                                                 \
            static_cast<std::int64_t>(delta));                              \
    } while (0)

/** Add `delta` to the counter with a runtime-built `name`. */
#define MITHRA_COUNT_DYNAMIC(name, delta)                                   \
    do {                                                                    \
        ::mithra::telemetry::StatsRegistry::global().counter(name).add(     \
            static_cast<std::int64_t>(delta));                              \
    } while (0)

/** Set the gauge `name` to `value` (last write wins). */
#define MITHRA_GAUGE_SET(name, value)                                       \
    do {                                                                    \
        static ::mithra::telemetry::Gauge &mithraGauge_ =                   \
            ::mithra::telemetry::StatsRegistry::global().gauge(name);       \
        mithraGauge_.set(static_cast<double>(value));                       \
    } while (0)

/** Record `value` in histogram `name` over [lo, hi) with `buckets`. */
#define MITHRA_HIST(name, lo, hi, buckets, value)                           \
    do {                                                                    \
        static ::mithra::telemetry::Histogram &mithraHistogram_ =           \
            ::mithra::telemetry::StatsRegistry::global().histogram(         \
                name, lo, hi, buckets);                                     \
        mithraHistogram_.record(static_cast<double>(value));                \
    } while (0)

#else // !MITHRA_TELEMETRY_ENABLED

// Compiled out, but arguments stay parsed as unevaluated operands so
// they cannot bit-rot (same technique as common/contracts.hh).
#define MITHRA_SPAN(name)                                                   \
    do {                                                                    \
        (void)sizeof(name);                                                 \
    } while (0)

#define MITHRA_COUNT(name, delta)                                           \
    do {                                                                    \
        (void)sizeof(name);                                                 \
        (void)sizeof(delta);                                                \
    } while (0)

#define MITHRA_COUNT_DYNAMIC(name, delta)                                   \
    do {                                                                    \
        (void)sizeof(name);                                                 \
        (void)sizeof(delta);                                                \
    } while (0)

#define MITHRA_GAUGE_SET(name, value)                                       \
    do {                                                                    \
        (void)sizeof(name);                                                 \
        (void)sizeof(value);                                                \
    } while (0)

#define MITHRA_HIST(name, lo, hi, buckets, value)                           \
    do {                                                                    \
        (void)sizeof(name);                                                 \
        (void)sizeof(value);                                                \
    } while (0)

#endif // MITHRA_TELEMETRY_ENABLED
