/**
 * @file
 * Scoped trace spans: named timing regions recording wall time, CPU
 * time and invocation counts, exportable as Chrome trace-event JSON.
 *
 * Usage (via the macro layer in telemetry/telemetry.hh):
 *
 *     void Pipeline::compile(...) {
 *         MITHRA_SPAN("core.pipeline.compile");
 *         ...
 *     }
 *
 * Each distinct span name owns one SpanSite aggregating call count and
 * total wall/CPU nanoseconds; sites live in the sorted SpanRegistry so
 * dumps iterate deterministically. Invocation *counts* are
 * deterministic and are included in run reports by default; *times*
 * are inherently nondeterministic and only appear when explicitly
 * requested (RunReport timing section, MITHRA_REPORT_TIMING=1).
 *
 * Flame-chart export: when MITHRA_TRACE=<path> is set in the
 * environment (or setTracePath() is called), every span entry/exit is
 * buffered as a complete ("ph":"X") Chrome trace event and written to
 * <path> at process exit or flushTrace(). Open the file in
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * This file is the tree's sanctioned timing implementation: the
 * mithra-lint no-raw-timing rule forbids std::chrono / clock() /
 * clock_gettime in src/ outside src/telemetry, so every measurement
 * flows through spans (or the clock helpers below).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace mithra::telemetry
{

/** Monotonic wall clock, nanoseconds since an arbitrary epoch. */
std::int64_t wallClockNs();

/** Per-thread CPU clock, nanoseconds. */
std::int64_t threadCpuClockNs();

/** Aggregated timing of one span name. */
class SpanSite
{
  public:
    explicit SpanSite(std::string name);

    SpanSite(const SpanSite &) = delete;
    SpanSite &operator=(const SpanSite &) = delete;

    void record(std::int64_t wallNs, std::int64_t cpuNs)
    {
        callCount.fetch_add(1, std::memory_order_relaxed);
        totalWallNs.fetch_add(wallNs, std::memory_order_relaxed);
        totalCpuNs.fetch_add(cpuNs, std::memory_order_relaxed);
    }

    const std::string &name() const { return siteName; }
    std::int64_t calls() const
    {
        return callCount.load(std::memory_order_relaxed);
    }
    std::int64_t wallNs() const
    {
        return totalWallNs.load(std::memory_order_relaxed);
    }
    std::int64_t cpuNs() const
    {
        return totalCpuNs.load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::string siteName;
    std::atomic<std::int64_t> callCount{0};
    std::atomic<std::int64_t> totalWallNs{0};
    std::atomic<std::int64_t> totalCpuNs{0};
};

/** Sorted name -> SpanSite registry backing the MITHRA_SPAN macro. */
class SpanRegistry
{
  public:
    SpanRegistry() = default;
    SpanRegistry(const SpanRegistry &) = delete;
    SpanRegistry &operator=(const SpanRegistry &) = delete;

    static SpanRegistry &global();

    /** Get-or-create the site for `name`. */
    SpanSite &site(const std::string &name);

    /**
     * Span aggregates as a JSON object in sorted-name order. With
     * `includeTimes` false (the default for run reports) only the
     * deterministic call counts are emitted.
     */
    Json toJson(bool includeTimes) const;

    /** Human-readable per-span summary (counts + times). */
    std::string dump() const;

    /** Zero every site's aggregates (registrations stay). */
    void resetValues();

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<SpanSite>> sites;
};

/** RAII region: records into its site (and the trace buffer) on exit. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanSite &spanSite)
        : site(spanSite),
          startWallNs(wallClockNs()),
          startCpuNs(threadCpuClockNs())
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

  private:
    SpanSite &site;
    std::int64_t startWallNs;
    std::int64_t startCpuNs;
};

/**
 * Enable Chrome trace-event collection, writing to `path` at process
 * exit (or at an explicit flushTrace()). An empty path disables
 * collection. MITHRA_TRACE in the environment does the same at
 * startup.
 */
void setTracePath(const std::string &path);

/** True when span entry/exit events are being buffered. */
bool tracingEnabled();

/** Write buffered trace events now; returns the path (empty if off). */
std::string flushTrace();

} // namespace mithra::telemetry
