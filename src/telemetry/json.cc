#include "telemetry/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/contracts.hh"

namespace mithra::telemetry
{

bool
Json::asBool() const
{
    MITHRA_EXPECTS(kind_ == Kind::Bool, "JSON value is not a bool");
    return boolValue;
}

std::int64_t
Json::asInt() const
{
    MITHRA_EXPECTS(kind_ == Kind::Int, "JSON value is not an integer");
    return intValue;
}

double
Json::asNumber() const
{
    MITHRA_EXPECTS(kind_ == Kind::Int || kind_ == Kind::Double,
                   "JSON value is not a number");
    return kind_ == Kind::Int ? static_cast<double>(intValue)
                              : doubleValue;
}

const std::string &
Json::asString() const
{
    MITHRA_EXPECTS(kind_ == Kind::String, "JSON value is not a string");
    return stringValue;
}

const Json::Array &
Json::asArray() const
{
    MITHRA_EXPECTS(kind_ == Kind::Array, "JSON value is not an array");
    return arrayValue;
}

const Json::Object &
Json::asObject() const
{
    MITHRA_EXPECTS(kind_ == Kind::Object, "JSON value is not an object");
    return objectValue;
}

Json::Object &
Json::asObject()
{
    MITHRA_EXPECTS(kind_ == Kind::Object, "JSON value is not an object");
    return objectValue;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = objectValue.find(key);
    return it == objectValue.end() ? nullptr : &it->second;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    MITHRA_EXPECTS(kind_ == Kind::Object,
                   "operator[] on a non-object JSON value");
    return objectValue[key];
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolValue == other.boolValue;
      case Kind::Int:
        return intValue == other.intValue;
      case Kind::Double:
        return doubleValue == other.doubleValue;
      case Kind::String:
        return stringValue == other.stringValue;
      case Kind::Array:
        return arrayValue == other.arrayValue;
      case Kind::Object:
        return objectValue == other.objectValue;
    }
    return false;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendDouble(std::string &out, double value)
{
    MITHRA_EXPECTS(std::isfinite(value),
                   "JSON cannot represent non-finite number ", value);
    char buf[40];
    // Shortest %g form that still round-trips binary64: try 15 and 16
    // significant digits first, fall back to 17.
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    out += buf;
    // Keep the Double kind visible on re-parse ("1e2" and "1.5" carry
    // a decimal marker already; bare "15" would re-parse as Int).
    if (out.find_first_of(".eE", out.size() - std::strlen(buf))
        == std::string::npos) {
        out += ".0";
    }
}

void
dumpValue(const Json &value, std::string &out, int indent, int depth)
{
    const auto newline = [&] {
        if (indent < 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * depth), ' ');
    };

    switch (value.kind()) {
      case Json::Kind::Null:
        out += "null";
        return;
      case Json::Kind::Bool:
        out += value.asBool() ? "true" : "false";
        return;
      case Json::Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value.asInt()));
        out += buf;
        return;
      }
      case Json::Kind::Double:
        appendDouble(out, value.asNumber());
        return;
      case Json::Kind::String:
        appendEscaped(out, value.asString());
        return;
      case Json::Kind::Array: {
        const auto &items = value.asArray();
        if (items.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        bool first = true;
        for (const auto &item : items) {
            if (!first)
                out.push_back(',');
            first = false;
            ++depth;
            newline();
            --depth;
            dumpValue(item, out, indent, depth + 1);
        }
        newline();
        out.push_back(']');
        return;
      }
      case Json::Kind::Object: {
        const auto &members = value.asObject();
        if (members.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        bool first = true;
        for (const auto &[key, member] : members) {
            if (!first)
                out.push_back(',');
            first = false;
            ++depth;
            newline();
            --depth;
            appendEscaped(out, key);
            out.push_back(':');
            if (indent >= 0)
                out.push_back(' ');
            dumpValue(member, out, indent, depth + 1);
        }
        newline();
        out.push_back('}');
        return;
      }
    }
}

/** Recursive-descent parser over the document text. */
struct Parser
{
    const std::string &text;
    std::size_t at = 0;
    std::string error;
    std::size_t errorOffset = 0;

    bool fail(const std::string &message)
    {
        if (error.empty()) {
            error = message;
            errorOffset = at;
        }
        return false;
    }

    void skipSpace()
    {
        while (at < text.size()
               && (text[at] == ' ' || text[at] == '\t'
                   || text[at] == '\n' || text[at] == '\r')) {
            ++at;
        }
    }

    bool consume(char c)
    {
        if (at < text.size() && text[at] == c) {
            ++at;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool literal(const char *word, Json value, Json &out)
    {
        const std::size_t len = std::strlen(word);
        if (text.compare(at, len, word) != 0)
            return fail(std::string("expected `") + word + "'");
        at += len;
        out = std::move(value);
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        while (at < text.size()) {
            const char c = text[at];
            if (c == '"') {
                ++at;
                return true;
            }
            if (c == '\\') {
                if (at + 1 >= text.size())
                    return fail("dangling escape");
                const char esc = text[at + 1];
                at += 2;
                switch (esc) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'u': {
                    if (at + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int d = 0; d < 4; ++d) {
                        const char h = text[at + static_cast<std::size_t>(d)];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    at += 4;
                    if (code > 0x7f)
                        return fail("non-ASCII \\u escape unsupported");
                    out.push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out.push_back(c);
            ++at;
        }
        return fail("unterminated string");
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = at;
        if (at < text.size() && text[at] == '-')
            ++at;
        bool isDouble = false;
        while (at < text.size()) {
            const char c = text[at];
            if (c >= '0' && c <= '9') {
                ++at;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                if (c != '+' && c != '-')
                    isDouble = true;
                else if (text[at - 1] != 'e' && text[at - 1] != 'E')
                    break;
                ++at;
            } else {
                break;
            }
        }
        if (at == start || (at == start + 1 && text[start] == '-'))
            return fail("malformed number");
        const std::string token = text.substr(start, at - start);
        if (isDouble) {
            out = Json(std::strtod(token.c_str(), nullptr));
        } else {
            out = Json(static_cast<std::int64_t>(
                std::strtoll(token.c_str(), nullptr, 10)));
        }
        return true;
    }

    bool parseValue(Json &out)
    {
        skipSpace();
        if (at >= text.size())
            return fail("unexpected end of document");
        const char c = text[at];
        if (c == '{') {
            ++at;
            Json::Object members;
            skipSpace();
            if (at < text.size() && text[at] == '}') {
                ++at;
                out = Json(std::move(members));
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                if (members.count(key))
                    return fail("duplicate object key `" + key + "'");
                skipSpace();
                if (!consume(':'))
                    return false;
                Json member;
                if (!parseValue(member))
                    return false;
                members.emplace(std::move(key), std::move(member));
                skipSpace();
                if (at < text.size() && text[at] == ',') {
                    ++at;
                    continue;
                }
                break;
            }
            if (!consume('}'))
                return false;
            out = Json(std::move(members));
            return true;
        }
        if (c == '[') {
            ++at;
            Json::Array items;
            skipSpace();
            if (at < text.size() && text[at] == ']') {
                ++at;
                out = Json(std::move(items));
                return true;
            }
            for (;;) {
                Json item;
                if (!parseValue(item))
                    return false;
                items.push_back(std::move(item));
                skipSpace();
                if (at < text.size() && text[at] == ',') {
                    ++at;
                    continue;
                }
                break;
            }
            if (!consume(']'))
                return false;
            out = Json(std::move(items));
            return true;
        }
        if (c == '"') {
            std::string value;
            if (!parseString(value))
                return false;
            out = Json(std::move(value));
            return true;
        }
        if (c == 't')
            return literal("true", Json(true), out);
        if (c == 'f')
            return literal("false", Json(false), out);
        if (c == 'n')
            return literal("null", Json(), out);
        return parseNumber(out);
    }
};

} // namespace

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpValue(*this, out, indent, 0);
    if (indent >= 0)
        out.push_back('\n');
    return out;
}

ParseResult
parseJson(const std::string &text)
{
    Parser parser{text, 0, {}, 0};
    ParseResult result;
    if (!parser.parseValue(result.value)) {
        result.error = parser.error;
        result.errorOffset = parser.errorOffset;
        return result;
    }
    parser.skipSpace();
    if (parser.at != text.size()) {
        result.error = "trailing content after document";
        result.errorOffset = parser.at;
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace mithra::telemetry
