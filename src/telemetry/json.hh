/**
 * @file
 * A minimal JSON value model with a deterministic writer and a strict
 * parser.
 *
 * The telemetry layer emits machine-readable run reports and Chrome
 * trace files; this header is the only JSON implementation in the
 * tree. Two properties matter more than generality:
 *
 *  - **Deterministic output.** Objects are std::map, so keys serialize
 *    in sorted order; doubles print with %.17g (shortest form that
 *    round-trips a binary64 exactly); integers print as integers. The
 *    same value always serializes to the same bytes.
 *  - **Round-trip fidelity.** parse(dump(v)) reconstructs v exactly
 *    for every value this library produces (needed by the schema
 *    round-trip tests and the report-check tool).
 *
 * Not supported (reports never need them): non-finite numbers, \u
 *  escapes beyond ASCII control characters, duplicate object keys.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mithra::telemetry
{

/** One JSON value; a tagged union over the seven JSON shapes. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(bool value) : kind_(Kind::Bool), boolValue(value) {}
    Json(std::int64_t value) : kind_(Kind::Int), intValue(value) {}
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(std::size_t value)
        : Json(static_cast<std::int64_t>(value))
    {
    }
    Json(double value) : kind_(Kind::Double), doubleValue(value) {}
    Json(std::string value)
        : kind_(Kind::String), stringValue(std::move(value))
    {
    }
    Json(const char *value) : Json(std::string(value)) {}
    Json(Array value) : kind_(Kind::Array), arrayValue(std::move(value)) {}
    Json(Object value)
        : kind_(Kind::Object), objectValue(std::move(value))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Typed accessors; MITHRA_EXPECTS the kind matches. */
    bool asBool() const;
    std::int64_t asInt() const;
    /** Int or Double, widened to double. */
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    Object &asObject();

    /** Object member lookup; returns nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Object member assignment (converts a Null value to an object). */
    Json &operator[](const std::string &key);

    bool operator==(const Json &other) const;

    /**
     * Serialize. `indent` < 0 emits the compact single-line form;
     * otherwise a pretty form with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

  private:
    Kind kind_ = Kind::Null;
    bool boolValue = false;
    std::int64_t intValue = 0;
    double doubleValue = 0.0;
    std::string stringValue;
    Array arrayValue;
    Object objectValue;
};

/** Outcome of a parse: a value, or a message anchored to an offset. */
struct ParseResult
{
    Json value;
    bool ok = false;
    std::string error;
    std::size_t errorOffset = 0;
};

/** Parse a complete JSON document (trailing garbage is an error). */
ParseResult parseJson(const std::string &text);

} // namespace mithra::telemetry
