#include "telemetry/span.hh"

#include <cstdio>
#include <ctime>
#include <fstream>

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/format.hh"
#include "telemetry/stats.hh"

namespace mithra::telemetry
{

namespace
{

std::int64_t
clockNs(clockid_t clock)
{
    timespec ts{};
    clock_gettime(clock, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000
        + static_cast<std::int64_t>(ts.tv_nsec);
}

/** One buffered Chrome trace event (a completed span). */
struct TraceEvent
{
    const std::string *name = nullptr; // owned by the SpanSite
    std::size_t threadId = 0;
    std::int64_t startNs = 0;
    std::int64_t durationNs = 0;
};

/** Trace collection state; one per process. */
struct TraceBuffer
{
    std::mutex mutex;
    std::string path;
    bool enabled = false;
    bool exitHookInstalled = false;
    std::vector<TraceEvent> events;

    static TraceBuffer &global()
    {
        // Immortal, like the registries: spans ending during static
        // teardown still append events here.
        static TraceBuffer *buffer = new TraceBuffer;
        return *buffer;
    }
};

void
flushTraceAtExit()
{
    flushTrace();
}

/** Read MITHRA_TRACE once, before main's first span. */
[[maybe_unused]] const bool traceEnvApplied = [] {
    if (const char *path = env::text("MITHRA_TRACE"))
        setTracePath(path);
    return true;
}();

} // namespace

std::int64_t
wallClockNs()
{
    return clockNs(CLOCK_MONOTONIC);
}

std::int64_t
threadCpuClockNs()
{
    return clockNs(CLOCK_THREAD_CPUTIME_ID);
}

SpanSite::SpanSite(std::string name) : siteName(std::move(name)) {}

void
SpanSite::reset()
{
    callCount.store(0, std::memory_order_relaxed);
    totalWallNs.store(0, std::memory_order_relaxed);
    totalCpuNs.store(0, std::memory_order_relaxed);
}

SpanRegistry &
SpanRegistry::global()
{
    // Intentionally immortal (never destructed): the atexit trace
    // flush and function-local static SpanSite references in other
    // translation units must stay valid through static destruction.
    static SpanRegistry *registry = new SpanRegistry;
    return *registry;
}

SpanSite &
SpanRegistry::site(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = sites.find(name);
    if (it != sites.end())
        return *it->second;
    auto created = std::make_unique<SpanSite>(name);
    SpanSite &ref = *created;
    sites.emplace(name, std::move(created));
    return ref;
}

Json
SpanRegistry::toJson(bool includeTimes) const
{
    std::lock_guard<std::mutex> lock(mutex);
    Json::Object spans;
    for (const auto &[name, site] : sites) {
        Json::Object entry;
        entry.emplace("calls", Json(site->calls()));
        if (includeTimes) {
            entry.emplace("wall_ns", Json(site->wallNs()));
            entry.emplace("cpu_ns", Json(site->cpuNs()));
        }
        spans.emplace(name, Json(std::move(entry)));
    }
    return Json(std::move(spans));
}

std::string
SpanRegistry::dump() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string out;
    out += "---------- Begin MITHRA Spans ----------\n";
    for (const auto &[name, site] : sites) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%-44s calls %s  wall %.3f ms  cpu %.3f ms\n",
                      name.c_str(),
                      fmtCount(static_cast<double>(site->calls()))
                          .c_str(),
                      static_cast<double>(site->wallNs()) / 1e6,
                      static_cast<double>(site->cpuNs()) / 1e6);
        out += buf;
    }
    out += "---------- End MITHRA Spans ----------\n";
    return out;
}

void
SpanRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, site] : sites)
        site->reset();
}

ScopedSpan::~ScopedSpan()
{
    const std::int64_t endWallNs = wallClockNs();
    const std::int64_t wallNs = endWallNs - startWallNs;
    const std::int64_t cpuNs = threadCpuClockNs() - startCpuNs;
    site.record(wallNs, cpuNs);

    TraceBuffer &buffer = TraceBuffer::global();
    if (!buffer.enabled)
        return;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (!buffer.enabled)
        return;
    buffer.events.push_back(
        {&site.name(), threadOrdinal(), startWallNs, wallNs});
}

void
setTracePath(const std::string &path)
{
    TraceBuffer &buffer = TraceBuffer::global();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.path = path;
    buffer.enabled = !path.empty();
    if (buffer.enabled && !buffer.exitHookInstalled) {
        std::atexit(flushTraceAtExit);
        buffer.exitHookInstalled = true;
    }
}

bool
tracingEnabled()
{
    TraceBuffer &buffer = TraceBuffer::global();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    return buffer.enabled;
}

std::string
flushTrace()
{
    TraceBuffer &buffer = TraceBuffer::global();
    std::vector<TraceEvent> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        if (!buffer.enabled)
            return "";
        path = buffer.path;
        // Copy rather than drain: a later flush (e.g. the atexit hook
        // after an explicit flush) rewrites the file with *all* events.
        events = buffer.events;
    }

    Json::Array traceEvents;
    for (const TraceEvent &event : events) {
        Json::Object entry;
        entry.emplace("name", Json(*event.name));
        entry.emplace("cat", Json("mithra"));
        entry.emplace("ph", Json("X"));
        entry.emplace("ts",
                      Json(static_cast<double>(event.startNs) / 1e3));
        entry.emplace("dur",
                      Json(static_cast<double>(event.durationNs) / 1e3));
        entry.emplace("pid", Json(std::int64_t{1}));
        entry.emplace("tid",
                      Json(static_cast<std::int64_t>(event.threadId)));
        traceEvents.emplace_back(std::move(entry));
    }
    Json::Object document;
    document.emplace("displayTimeUnit", Json("ms"));
    document.emplace("traceEvents", Json(std::move(traceEvents)));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("cannot write trace file ", path);
        return "";
    }
    out << Json(std::move(document)).dump(1);
    return path;
}

} // namespace mithra::telemetry
