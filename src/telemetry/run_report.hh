/**
 * @file
 * Versioned machine-readable run reports.
 *
 * Every bench/ binary emits a `BENCH_<name>.json` next to its console
 * table; these files seed the perf-trajectory data the ROADMAP
 * expects. The document layout (schema version reportSchemaVersion):
 *
 *     {
 *       "schema": "mithra-run-report",
 *       "schemaVersion": 1,
 *       "name": "<binary name>",
 *       "gitDescribe": "<git describe --always --dirty at configure>",
 *       "metrics": { "<key>": <number|string>, ... },
 *       "stats":   { "counters": {...}, "gauges": {...},
 *                    "histograms": {...} },
 *       "spans":   { "<span>": {"calls": N[, "wall_ns", "cpu_ns"]} }
 *     }
 *
 * Reports are deterministic by default: sorted keys, round-tripping
 * number formatting, and no wall-clock data — span timing is included
 * only when MITHRA_REPORT_TIMING=1 is set (or includeTiming(true) is
 * called), because times would break the bitwise MITHRA_THREADS=1 vs
 * N comparison the telemetry tests rely on.
 *
 * Output directory: $MITHRA_REPORT_DIR, defaulting to the working
 * directory.
 */

#pragma once

#include <string>

#include "telemetry/json.hh"

namespace mithra::telemetry
{

/** Version of the report layout; bump on breaking changes. */
constexpr std::int64_t reportSchemaVersion = 1;

/** Value of the "schema" discriminator field. */
inline const char *const reportSchemaName = "mithra-run-report";

/** The `git describe` string baked in at configure time. */
std::string gitDescribe();

/** Builder for one run report. */
class RunReport
{
  public:
    /** `runName` is the emitting binary, e.g. "fig06_overall". */
    explicit RunReport(std::string runName);

    /** Attach one scalar result (sorted into "metrics"). */
    void addMetric(const std::string &key, double value);
    void addMetric(const std::string &key, std::int64_t value);
    void addMetric(const std::string &key, const std::string &value);

    /** Force span wall/CPU times into the report (nondeterministic). */
    void includeTiming(bool include) { timingForced = include; }

    /** The full document, snapshotting the global registries. */
    Json toJson() const;

    /**
     * Serialize to "<dir>/BENCH_<name>.json" where <dir> is
     * $MITHRA_REPORT_DIR or "."; also flushes the Chrome trace when
     * tracing is on. Returns the path written (empty on I/O failure).
     */
    std::string write() const;

    const std::string &name() const { return reportName; }

  private:
    std::string reportName;
    Json::Object metrics;
    bool timingForced = false;
};

/**
 * Validate a parsed document against the schema: discriminator,
 * version, and required sections. Returns an empty string when valid,
 * else a description of the first problem.
 */
std::string validateReport(const Json &document);

/** Value of the "schema" field of a `GET /metrics` document. */
inline const char *const metricsSchemaName = "mithra-metrics";

/**
 * The service's `GET /metrics` document (DESIGN.md §14): the global
 * stats registry snapshot under the same discriminated-envelope
 * convention as run reports:
 *
 *     { "schema": "mithra-metrics", "schemaVersion": 1,
 *       "gitDescribe": "...",
 *       "stats": { "counters": {...}, "gauges": {...},
 *                  "histograms": {...} } }
 *
 * Deterministic: volatile stats are excluded, keys are sorted.
 */
Json metricsDocument();

/**
 * Validate a parsed `/metrics` document (report-check --metrics).
 * Returns an empty string when valid, else the first problem.
 */
std::string validateMetrics(const Json &document);

/** Value of the "schema" field of a Pareto-front document. */
inline const char *const paretoFrontSchemaName = "mithra-pareto-front";

/** Version of the Pareto-front layout; bump on breaking changes. */
constexpr std::int64_t paretoFrontSchemaVersion = 1;

/**
 * Validate the design-space explorer's per-benchmark Pareto-front
 * document (DESIGN.md §15, report-check --front):
 *
 *     { "schema": "mithra-pareto-front", "schemaVersion": 1,
 *       "gitDescribe": "...", "benchmark": "...",
 *       "spec": {...}, "axes": {...}, "options": {...},
 *       "summary": { "candidates": N, "exactEvalsSelected": k,
 *                    "savedPct": ..., "sweepSpeedup": ...,
 *                    "hypervolume": ..., ... },
 *       "front": [ { "numTables": ..., "tableBytes": ...,
 *                    "costBytes": ..., "invocationRate": ... }, ... ],
 *       "candidates": [ { ..., "state": "seed|survivor|..." }, ... ] }
 *
 * The validator lives here (not in src/dse) because tools/ may only
 * depend on common + telemetry. Returns an empty string when valid,
 * else the first problem.
 */
std::string validateParetoFront(const Json &document);

} // namespace mithra::telemetry
