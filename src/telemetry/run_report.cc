#include "telemetry/run_report.hh"

#include <fstream>

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "telemetry/span.hh"
#include "telemetry/stats.hh"

#ifndef MITHRA_GIT_DESCRIBE
#define MITHRA_GIT_DESCRIBE "unknown"
#endif

namespace mithra::telemetry
{

std::string
gitDescribe()
{
    return MITHRA_GIT_DESCRIBE;
}

namespace
{

bool
timingRequestedByEnv()
{
    return env::flag("MITHRA_REPORT_TIMING");
}

std::string
reportDirectory()
{
    return env::text("MITHRA_REPORT_DIR", ".");
}

} // namespace

RunReport::RunReport(std::string runName)
    : reportName(std::move(runName))
{
    MITHRA_EXPECTS(!reportName.empty(), "run report needs a name");
}

void
RunReport::addMetric(const std::string &key, double value)
{
    metrics[key] = Json(value);
}

void
RunReport::addMetric(const std::string &key, std::int64_t value)
{
    metrics[key] = Json(value);
}

void
RunReport::addMetric(const std::string &key, const std::string &value)
{
    metrics[key] = Json(value);
}

Json
RunReport::toJson() const
{
    const bool includeTimes = timingForced || timingRequestedByEnv();
    Json::Object document;
    document.emplace("schema", Json(reportSchemaName));
    document.emplace("schemaVersion", Json(reportSchemaVersion));
    document.emplace("name", Json(reportName));
    document.emplace("gitDescribe", Json(gitDescribe()));
    document.emplace("metrics", Json(metrics));
    // Volatile stats ride with the (equally nondeterministic) timing.
    document.emplace("stats",
                     StatsRegistry::global().toJson(includeTimes));
    document.emplace("spans",
                     SpanRegistry::global().toJson(includeTimes));
    return Json(std::move(document));
}

std::string
RunReport::write() const
{
    const std::string path =
        reportDirectory() + "/BENCH_" + reportName + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("cannot write run report ", path);
        return "";
    }
    out << toJson().dump(1);
    out.close();
    if (out.fail()) {
        warn("short write on run report ", path);
        return "";
    }
    if (tracingEnabled())
        flushTrace();
    return path;
}

std::string
validateReport(const Json &document)
{
    if (document.kind() != Json::Kind::Object)
        return "document is not a JSON object";

    const Json *schema = document.find("schema");
    if (!schema || schema->kind() != Json::Kind::String)
        return "missing `schema' string";
    if (schema->asString() != reportSchemaName) {
        return "unexpected schema `" + schema->asString() + "' (want `"
            + reportSchemaName + "')";
    }

    const Json *version = document.find("schemaVersion");
    if (!version || version->kind() != Json::Kind::Int)
        return "missing `schemaVersion' integer";
    if (version->asInt() != reportSchemaVersion) {
        return "schemaVersion " + std::to_string(version->asInt())
            + " does not match supported version "
            + std::to_string(reportSchemaVersion);
    }

    const Json *name = document.find("name");
    if (!name || name->kind() != Json::Kind::String
        || name->asString().empty()) {
        return "missing `name' string";
    }

    if (const Json *git = document.find("gitDescribe");
        !git || git->kind() != Json::Kind::String) {
        return "missing `gitDescribe' string";
    }

    for (const char *section : {"metrics", "stats", "spans"}) {
        const Json *value = document.find(section);
        if (!value || value->kind() != Json::Kind::Object)
            return std::string("missing `") + section + "' object";
    }

    const Json &stats = *document.find("stats");
    for (const char *section : {"counters", "gauges", "histograms"}) {
        const Json *value = stats.find(section);
        if (!value || value->kind() != Json::Kind::Object) {
            return std::string("missing `stats.") + section
                + "' object";
        }
    }
    return "";
}

Json
metricsDocument()
{
    Json::Object document;
    document.emplace("schema", Json(metricsSchemaName));
    document.emplace("schemaVersion", Json(reportSchemaVersion));
    document.emplace("gitDescribe", Json(gitDescribe()));
    document.emplace("stats", StatsRegistry::global().toJson(false));
    return Json(std::move(document));
}

std::string
validateMetrics(const Json &document)
{
    if (document.kind() != Json::Kind::Object)
        return "document is not a JSON object";

    const Json *schema = document.find("schema");
    if (!schema || schema->kind() != Json::Kind::String)
        return "missing `schema' string";
    if (schema->asString() != metricsSchemaName) {
        return "unexpected schema `" + schema->asString() + "' (want `"
            + metricsSchemaName + "')";
    }

    const Json *version = document.find("schemaVersion");
    if (!version || version->kind() != Json::Kind::Int)
        return "missing `schemaVersion' integer";
    if (version->asInt() != reportSchemaVersion) {
        return "schemaVersion " + std::to_string(version->asInt())
            + " does not match supported version "
            + std::to_string(reportSchemaVersion);
    }

    if (const Json *git = document.find("gitDescribe");
        !git || git->kind() != Json::Kind::String) {
        return "missing `gitDescribe' string";
    }

    const Json *stats = document.find("stats");
    if (!stats || stats->kind() != Json::Kind::Object)
        return "missing `stats' object";
    for (const char *section : {"counters", "gauges", "histograms"}) {
        const Json *value = stats->find(section);
        if (!value || value->kind() != Json::Kind::Object) {
            return std::string("missing `stats.") + section
                + "' object";
        }
    }
    return "";
}

std::string
validateParetoFront(const Json &document)
{
    if (document.kind() != Json::Kind::Object)
        return "document is not a JSON object";

    const Json *schema = document.find("schema");
    if (!schema || schema->kind() != Json::Kind::String)
        return "missing `schema' string";
    if (schema->asString() != paretoFrontSchemaName) {
        return "unexpected schema `" + schema->asString() + "' (want `"
            + paretoFrontSchemaName + "')";
    }

    const Json *version = document.find("schemaVersion");
    if (!version || version->kind() != Json::Kind::Int)
        return "missing `schemaVersion' integer";
    if (version->asInt() != paretoFrontSchemaVersion) {
        return "schemaVersion " + std::to_string(version->asInt())
            + " does not match supported version "
            + std::to_string(paretoFrontSchemaVersion);
    }

    if (const Json *git = document.find("gitDescribe");
        !git || git->kind() != Json::Kind::String) {
        return "missing `gitDescribe' string";
    }

    const Json *benchmark = document.find("benchmark");
    if (!benchmark || benchmark->kind() != Json::Kind::String
        || benchmark->asString().empty()) {
        return "missing `benchmark' string";
    }

    for (const char *section : {"spec", "axes", "options", "summary"}) {
        const Json *value = document.find(section);
        if (!value || value->kind() != Json::Kind::Object)
            return std::string("missing `") + section + "' object";
    }

    const Json &summary = *document.find("summary");
    for (const char *field :
         {"candidates", "exactEvalsSelected", "exactEvalsExecuted",
          "savedPct", "sweepSpeedup", "hypervolume"}) {
        const Json *value = summary.find(field);
        if (!value
            || (value->kind() != Json::Kind::Int
                && value->kind() != Json::Kind::Double)) {
            return std::string("missing `summary.") + field
                + "' number";
        }
    }

    for (const char *section : {"front", "candidates"}) {
        const Json *value = document.find(section);
        if (!value || value->kind() != Json::Kind::Array)
            return std::string("missing `") + section + "' array";
    }

    for (const Json &entry : document.find("front")->asArray()) {
        if (entry.kind() != Json::Kind::Object)
            return "`front' entries must be objects";
        for (const char *field : {"numTables", "tableBytes",
                                  "quantizerBits", "costBytes",
                                  "invocationRate", "qualityMet"}) {
            const Json *value = entry.find(field);
            if (!value
                || (value->kind() != Json::Kind::Int
                    && value->kind() != Json::Kind::Double)) {
                return std::string("front entry missing `") + field
                    + "' number";
            }
        }
    }

    for (const Json &entry : document.find("candidates")->asArray()) {
        if (entry.kind() != Json::Kind::Object)
            return "`candidates' entries must be objects";
        const Json *state = entry.find("state");
        if (!state || state->kind() != Json::Kind::String)
            return "candidate entry missing `state' string";
    }
    return "";
}

} // namespace mithra::telemetry
