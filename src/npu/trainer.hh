/**
 * @file
 * Offline MLP training (stochastic gradient descent with momentum).
 *
 * Both the NPU configuration (the accelerator's network) and MITHRA's
 * neural classifier are trained offline at compile time (paper
 * §IV-C.2). Training is fully deterministic given the seed.
 */

#pragma once

#include <cstdint>

#include "common/vec.hh"
#include "npu/mlp.hh"

namespace mithra::npu
{

/** Hyper-parameters for offline training. */
struct TrainerOptions
{
    std::size_t epochs = 120;
    float learningRate = 0.25f;
    float momentum = 0.9f;
    std::size_t batchSize = 16;
    std::uint64_t seed = 1;
    /** Stop early when training MSE drops below this (0 disables). */
    double targetMse = 0.0;
    /** Multiplicative learning-rate decay per epoch (1 = constant). */
    float lrDecay = 1.0f;
};

/**
 * Initialize weights with small uniform values scaled by fan-in
 * (Xavier-style), deterministically from options.seed.
 */
void initWeights(Mlp &mlp, std::uint64_t seed);

/**
 * Train the network on (input, target) pairs with minibatch SGD and
 * momentum; targets must lie in (0, 1) since the output layer is
 * sigmoid.
 *
 * @return the final epoch's mean squared error.
 */
double train(Mlp &mlp, const VecBatch &inputs, const VecBatch &targets,
             const TrainerOptions &options);

/** Mean squared error of the network over a dataset. */
double meanSquaredError(const Mlp &mlp, const VecBatch &inputs,
                        const VecBatch &targets);

} // namespace mithra::npu

