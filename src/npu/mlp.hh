/**
 * @file
 * Multi-layer perceptron model.
 *
 * This is the compute substrate for both the approximate accelerator
 * (the NPU executes an MLP trained to mimic the safe-to-approximate
 * function, per Esmaeilzadeh et al. MICRO'12) and MITHRA's neural
 * classifier (paper §IV-B). Fully connected layers with sigmoid
 * activations; weights are trained offline by npu/trainer.
 *
 * Storage is the kernels layer's padded SoA layout: each layer's
 * weight matrix is out × layerStride(l) floats, the stride rounded up
 * to 8-float lanes, rows 32-byte aligned, padding lanes pinned at
 * +0.0f (the trainer's element-wise updates provably keep them there).
 * Biases live in a separate per-layer array, added after the canonical
 * 8-lane dot product — every forward MAC runs through
 * kernels::gemvBias and is bitwise identical across kernel backends.
 */

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/kernels/kernels.hh"
#include "common/vec.hh"

namespace mithra::npu
{

/** Layer widths, e.g. {6, 8, 3, 1} for blackscholes' NPU. */
using Topology = std::vector<std::size_t>;

/** Render a topology as "6->8->3->1". */
std::string topologyName(const Topology &topology);

class Mlp;

/**
 * Caller-owned per-layer activation buffers for one forward pass
 * (input included as layer 0). Buffers are lane-padded and aligned so
 * they can feed kernels::gemvBias directly; padding lanes stay 0.0f.
 * prepare() sizes the buffers once (and is a no-op when already
 * prepared for the same topology); a prepared scratch runs any number
 * of forwardTrace() passes with zero allocations — the trainer keeps
 * one per parallel chunk so the whole epoch loop is allocation free.
 */
struct ForwardScratch
{
    std::vector<kernels::AlignedVec> activations;
    /** Logical (unpadded) width of each activation plane. */
    std::vector<std::size_t> widths;

    /** Size the buffers for one network topology. */
    void prepare(const Topology &topology);

    /** Network output of the last forwardTrace() pass. */
    std::span<const float> output() const
    {
        return {activations.back().data(), widths.back()};
    }
};

/** A fully connected sigmoid MLP. */
class Mlp
{
  public:
    /** Create with all weights zero; use trainer or setWeight. */
    explicit Mlp(Topology topology);

    /** Forward pass; input size must match the first layer width. */
    Vec forward(const Vec &input) const;

    /** The layer widths. */
    const Topology &topology() const { return topo; }

    /** Number of weights including biases (logical, unpadded). */
    std::size_t weightCount() const;

    /** Multiply-accumulate operations per forward pass. */
    std::size_t macsPerForward() const;

    /** Number of sigmoid evaluations per forward pass. */
    std::size_t sigmoidsPerForward() const;

    /** Storage footprint of the weights in bytes (32-bit words). */
    std::size_t sizeBytes() const { return weightCount() * 4; }

    /**
     * Weight of the edge from `from` (or the bias when
     * from == fan-in) to neuron `to` of layer `layer` (1-based layer
     * indexing over non-input layers).
     */
    float weight(std::size_t layer, std::size_t to, std::size_t from) const;

    /** Mutate one weight (used by the trainer). */
    void setWeight(std::size_t layer, std::size_t to, std::size_t from,
                   float value);

    /**
     * Lane-padded row stride (in floats) of layer `layer`'s weight
     * matrix: paddedSize(fan-in).
     */
    std::size_t layerStride(std::size_t layer) const;

    /**
     * Flat mutable access to layer `layer`'s padded weight matrix
     * (out × layerStride(layer), bias excluded). Writers must keep the
     * padding lanes at +0.0f — the kernels rely on it.
     */
    kernels::AlignedVec &layerWeights(std::size_t layer);
    const kernels::AlignedVec &layerWeights(std::size_t layer) const;

    /** Layer `layer`'s bias vector (one float per output neuron). */
    std::vector<float> &layerBias(std::size_t layer);
    const std::vector<float> &layerBias(std::size_t layer) const;

    /** Sigmoid activation used by every neuron. */
    static float activate(float x);

  private:
    Topology topo;
    /**
     * weightsPerLayer[l] holds layer l+1's matrix in the padded SoA
     * layout: out × paddedSize(in), padding lanes zero.
     */
    std::vector<kernels::AlignedVec> weightsPerLayer;
    /** biasPerLayer[l] holds layer l+1's biases (out floats). */
    std::vector<std::vector<float>> biasPerLayer;
};

/**
 * Forward pass recording every layer's activations into `scratch`
 * (prepared for this network's topology). Allocation free; the
 * backpropagation inner loop and the bulk evaluation paths use this
 * instead of Mlp::forward(). `input` needs no padding or alignment —
 * it is staged into the scratch's padded input plane.
 */
void forwardTrace(const Mlp &mlp, std::span<const float> input,
                  ForwardScratch &scratch);

} // namespace mithra::npu
