/**
 * @file
 * Multi-layer perceptron model.
 *
 * This is the compute substrate for both the approximate accelerator
 * (the NPU executes an MLP trained to mimic the safe-to-approximate
 * function, per Esmaeilzadeh et al. MICRO'12) and MITHRA's neural
 * classifier (paper §IV-B). Fully connected layers with sigmoid
 * activations; weights are trained offline by npu/trainer.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/vec.hh"

namespace mithra::npu
{

/** Layer widths, e.g. {6, 8, 3, 1} for blackscholes' NPU. */
using Topology = std::vector<std::size_t>;

/** Render a topology as "6->8->3->1". */
std::string topologyName(const Topology &topology);

class Mlp;

/**
 * Caller-owned per-layer activation buffers for one forward pass
 * (input included as layer 0). prepare() sizes the buffers once; a
 * scratch prepared for a topology can then run any number of
 * forwardTrace() passes with zero allocations — the trainer keeps one
 * per parallel chunk so the whole epoch loop is allocation free.
 */
struct ForwardScratch
{
    std::vector<Vec> activations;

    /** Size the buffers for one network topology. */
    void prepare(const Topology &topology);

    /** Network output of the last forwardTrace() pass. */
    const Vec &output() const { return activations.back(); }
};

/** A fully connected sigmoid MLP. */
class Mlp
{
  public:
    /** Create with all weights zero; use trainer or setWeight. */
    explicit Mlp(Topology topology);

    /** Forward pass; input size must match the first layer width. */
    Vec forward(const Vec &input) const;

    /** The layer widths. */
    const Topology &topology() const { return topo; }

    /** Number of weights including biases. */
    std::size_t weightCount() const;

    /** Multiply-accumulate operations per forward pass. */
    std::size_t macsPerForward() const;

    /** Number of sigmoid evaluations per forward pass. */
    std::size_t sigmoidsPerForward() const;

    /** Storage footprint of the weights in bytes (32-bit words). */
    std::size_t sizeBytes() const { return weightCount() * 4; }

    /**
     * Weight of the edge from `from` (or the bias when
     * from == fan-in) to neuron `to` of layer `layer` (1-based layer
     * indexing over non-input layers).
     */
    float weight(std::size_t layer, std::size_t to, std::size_t from) const;

    /** Mutate one weight (used by the trainer). */
    void setWeight(std::size_t layer, std::size_t to, std::size_t from,
                   float value);

    /** Flat mutable access for the trainer's inner loop. */
    std::vector<float> &layerWeights(std::size_t layer);
    const std::vector<float> &layerWeights(std::size_t layer) const;

    /** Sigmoid activation used by every neuron. */
    static float activate(float x);

  private:
    Topology topo;
    /**
     * weightsPerLayer[l] holds layer l+1's matrix, row-major:
     * out × (in + 1), the last column being the bias.
     */
    std::vector<std::vector<float>> weightsPerLayer;
};

/**
 * Forward pass recording every layer's activations into `scratch`
 * (prepared for this network's topology). Allocation free; the
 * backpropagation inner loop and the bulk evaluation paths use this
 * instead of Mlp::forward().
 */
void forwardTrace(const Mlp &mlp, const Vec &input,
                  ForwardScratch &scratch);

} // namespace mithra::npu

