#include "npu/cost_model.hh"

#include "common/contracts.hh"

namespace mithra::npu
{

NpuCostModel::NpuCostModel(const NpuParams &params)
    : npuParams(params)
{
    MITHRA_EXPECTS(npuParams.numPes > 0, "NPU needs at least one PE");
}

std::size_t
NpuCostModel::invocationCycles(const Mlp &mlp) const
{
    const auto &topo = mlp.topology();
    std::size_t cycles = npuParams.invocationOverheadCycles;

    // Enqueue inputs word by word.
    cycles += topo.front() * npuParams.cyclesPerQueueWord;

    // Each layer: neurons are spread over the PEs; a PE computes its
    // neuron's dot product one MAC per cycle, then the sigmoid unit
    // finishes the neuron. Rounds of `numPes` neurons serialize.
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t in = topo[l - 1];
        const std::size_t out = topo[l];
        const std::size_t rounds =
            (out + npuParams.numPes - 1) / npuParams.numPes;
        cycles += rounds * ((in + 1) + npuParams.cyclesPerSigmoid);
    }

    // Dequeue outputs.
    cycles += topo.back() * npuParams.cyclesPerQueueWord;
    return cycles;
}

double
NpuCostModel::invocationEnergyPj(const Mlp &mlp) const
{
    const auto &topo = mlp.topology();
    double energy = 0.0;
    energy += static_cast<double>(mlp.macsPerForward())
        * npuParams.picoJoulesPerMac;
    energy += static_cast<double>(mlp.sigmoidsPerForward())
        * npuParams.picoJoulesPerSigmoid;
    energy += static_cast<double>(topo.front() + topo.back())
        * npuParams.picoJoulesPerQueueWord;
    energy += static_cast<double>(invocationCycles(mlp))
        * npuParams.picoJoulesPerCycleStatic;
    return energy;
}

NpuCost
NpuCostModel::invocationCost(const Mlp &mlp) const
{
    return {invocationCycles(mlp), invocationEnergyPj(mlp)};
}

} // namespace mithra::npu
