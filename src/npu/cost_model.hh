/**
 * @file
 * NPU cycle and energy model.
 *
 * The accelerator is the eight-PE neural processing unit of
 * Esmaeilzadeh et al. (MICRO'12): the core enqueues the invocation's
 * inputs into an input FIFO, the PEs evaluate the MLP layer by layer
 * (neurons of a layer are distributed across PEs; sigmoid comes from a
 * lookup unit), and the core dequeues the outputs. The NPU runs at the
 * core clock, so costs are expressed in core cycles.
 *
 * Energy constants are 45 nm figures in the spirit of the paper's
 * McPAT/CACTI/synthesis methodology (see DESIGN.md for the
 * substitution note); what matters for the reproduced results is their
 * relative magnitude versus the core model in sim/core_model.
 */

#pragma once

#include <cstddef>

#include "npu/mlp.hh"

namespace mithra::npu
{

/** Microarchitectural parameters of the NPU. */
struct NpuParams
{
    /** Parallel processing elements (paper: 8). */
    std::size_t numPes = 8;
    /** Cycles to move one word through an ISA queue instruction. */
    std::size_t cyclesPerQueueWord = 1;
    /** Pipeline fill / drain overhead per invocation. */
    std::size_t invocationOverheadCycles = 4;
    /** Cycles per sigmoid lookup (per neuron, overlapped per PE). */
    std::size_t cyclesPerSigmoid = 1;

    /** Energy per multiply-accumulate including weight SRAM read. */
    double picoJoulesPerMac = 5.0;
    /** Energy per sigmoid LUT access. */
    double picoJoulesPerSigmoid = 2.0;
    /** Energy per word moved through a FIFO. */
    double picoJoulesPerQueueWord = 1.2;
    /** NPU static energy per busy cycle (leakage + clock). */
    double picoJoulesPerCycleStatic = 15.0;
};

/** Cycle/energy cost of one invocation of a given network. */
struct NpuCost
{
    std::size_t cycles = 0;
    double picoJoules = 0.0;
};

/** Cost model for executing MLPs on the NPU. */
class NpuCostModel
{
  public:
    explicit NpuCostModel(const NpuParams &params = NpuParams{});

    /**
     * Cycles to run one forward pass of `mlp`, including enqueueing
     * the inputs and dequeueing the outputs.
     */
    std::size_t invocationCycles(const Mlp &mlp) const;

    /** Energy of one forward pass, in picojoules. */
    double invocationEnergyPj(const Mlp &mlp) const;

    /** Both at once. */
    NpuCost invocationCost(const Mlp &mlp) const;

    const NpuParams &params() const { return npuParams; }

  private:
    NpuParams npuParams;
};

} // namespace mithra::npu

