#include "npu/mlp.hh"

#include <cmath>

#include "common/contracts.hh"

namespace mithra::npu
{

std::string
topologyName(const Topology &topology)
{
    // Hot logging/telemetry label path: plain append, no ostringstream.
    std::string name;
    name.reserve(topology.size() * 4);
    for (std::size_t i = 0; i < topology.size(); ++i) {
        if (i)
            name += "->";
        name += std::to_string(topology[i]);
    }
    return name;
}

void
ForwardScratch::prepare(const Topology &topology)
{
    if (widths == topology)
        return;
    widths = topology;
    activations.assign(topology.size(), kernels::AlignedVec());
    for (std::size_t l = 0; l < topology.size(); ++l)
        activations[l].assign(kernels::paddedSize(topology[l]), 0.0f);
}

void
forwardTrace(const Mlp &mlp, std::span<const float> input,
             ForwardScratch &scratch)
{
    const auto &topo = mlp.topology();
    MITHRA_EXPECTS(input.size() == topo.front(), "MLP input width ",
                   input.size(), " != ", topo.front());
    MITHRA_EXPECTS(scratch.widths == topo,
                   "scratch not prepared for this topology");
    std::copy(input.begin(), input.end(),
              scratch.activations.front().begin());

    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t out = topo[l];
        const kernels::AlignedVec &prev = scratch.activations[l - 1];
        kernels::AlignedVec &next = scratch.activations[l];
        kernels::gemvBias(mlp.layerWeights(l).data(),
                          mlp.layerStride(l), mlp.layerBias(l).data(),
                          prev.data(), out, next.data());
        // Sigmoid stays scalar std::exp in every path; gemvBias wrote
        // exactly `out` floats, so the padding lanes remain +0.0f.
        for (std::size_t o = 0; o < out; ++o)
            next[o] = Mlp::activate(next[o]);
    }
}

Mlp::Mlp(Topology topology)
    : topo(std::move(topology))
{
    MITHRA_EXPECTS(topo.size() >= 2, "an MLP needs at least two layers");
    for (std::size_t width : topo)
        MITHRA_EXPECTS(width > 0, "zero-width MLP layer");
    for (std::size_t l = 1; l < topo.size(); ++l) {
        weightsPerLayer.emplace_back(
            topo[l] * kernels::paddedSize(topo[l - 1]), 0.0f);
        biasPerLayer.emplace_back(topo[l], 0.0f);
    }
}

float
Mlp::activate(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

Vec
Mlp::forward(const Vec &input) const
{
    // One padded scratch per thread: repeat forwards through the same
    // topology allocate nothing but the returned vector.
    thread_local ForwardScratch scratch;
    scratch.prepare(topo);
    forwardTrace(*this, input, scratch);
    const std::span<const float> out = scratch.output();
    return Vec(out.begin(), out.end());
}

std::size_t
Mlp::weightCount() const
{
    std::size_t count = 0;
    for (std::size_t l = 1; l < topo.size(); ++l)
        count += topo[l] * (topo[l - 1] + 1);
    return count;
}

std::size_t
Mlp::macsPerForward() const
{
    std::size_t macs = 0;
    for (std::size_t l = 1; l < topo.size(); ++l)
        macs += topo[l] * (topo[l - 1] + 1);
    return macs;
}

std::size_t
Mlp::sigmoidsPerForward() const
{
    std::size_t sigmoids = 0;
    for (std::size_t l = 1; l < topo.size(); ++l)
        sigmoids += topo[l];
    return sigmoids;
}

float
Mlp::weight(std::size_t layer, std::size_t to, std::size_t from) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    const std::size_t in = topo[layer - 1];
    MITHRA_EXPECTS(to < topo[layer] && from <= in, "bad weight index");
    if (from == in)
        return biasPerLayer[layer - 1][to];
    return weightsPerLayer[layer - 1][to * layerStride(layer) + from];
}

void
Mlp::setWeight(std::size_t layer, std::size_t to, std::size_t from,
               float value)
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    const std::size_t in = topo[layer - 1];
    MITHRA_EXPECTS(to < topo[layer] && from <= in, "bad weight index");
    if (from == in)
        biasPerLayer[layer - 1][to] = value;
    else
        weightsPerLayer[layer - 1][to * layerStride(layer) + from] =
            value;
}

std::size_t
Mlp::layerStride(std::size_t layer) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return kernels::paddedSize(topo[layer - 1]);
}

kernels::AlignedVec &
Mlp::layerWeights(std::size_t layer)
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return weightsPerLayer[layer - 1];
}

const kernels::AlignedVec &
Mlp::layerWeights(std::size_t layer) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return weightsPerLayer[layer - 1];
}

std::vector<float> &
Mlp::layerBias(std::size_t layer)
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return biasPerLayer[layer - 1];
}

const std::vector<float> &
Mlp::layerBias(std::size_t layer) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return biasPerLayer[layer - 1];
}

} // namespace mithra::npu
