#include "npu/mlp.hh"

#include <cmath>
#include <sstream>

#include "common/contracts.hh"

namespace mithra::npu
{

std::string
topologyName(const Topology &topology)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < topology.size(); ++i) {
        if (i)
            os << "->";
        os << topology[i];
    }
    return os.str();
}

void
ForwardScratch::prepare(const Topology &topology)
{
    activations.resize(topology.size());
    for (std::size_t l = 0; l < topology.size(); ++l)
        activations[l].resize(topology[l]);
}

void
forwardTrace(const Mlp &mlp, const Vec &input, ForwardScratch &scratch)
{
    const auto &topo = mlp.topology();
    MITHRA_EXPECTS(input.size() == topo.front(), "MLP input width ",
                   input.size(), " != ", topo.front());
    MITHRA_EXPECTS(scratch.activations.size() == topo.size(),
                   "scratch not prepared for this topology");
    std::copy(input.begin(), input.end(),
              scratch.activations.front().begin());

    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t in = topo[l - 1];
        const std::size_t out = topo[l];
        const auto &weights = mlp.layerWeights(l);
        const Vec &prev = scratch.activations[l - 1];
        Vec &next = scratch.activations[l];
        for (std::size_t o = 0; o < out; ++o) {
            const float *row = &weights[o * (in + 1)];
            float sum = row[in]; // bias
            for (std::size_t i = 0; i < in; ++i)
                sum += row[i] * prev[i];
            next[o] = Mlp::activate(sum);
        }
    }
}

Mlp::Mlp(Topology topology)
    : topo(std::move(topology))
{
    MITHRA_EXPECTS(topo.size() >= 2, "an MLP needs at least two layers");
    for (std::size_t width : topo)
        MITHRA_EXPECTS(width > 0, "zero-width MLP layer");
    for (std::size_t l = 1; l < topo.size(); ++l)
        weightsPerLayer.emplace_back(topo[l] * (topo[l - 1] + 1), 0.0f);
}

float
Mlp::activate(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

Vec
Mlp::forward(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == topo.front(), "MLP input width ",
                   input.size(), " != ", topo.front());
    Vec current = input;
    Vec next;
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t in = topo[l - 1];
        const std::size_t out = topo[l];
        const auto &weights = weightsPerLayer[l - 1];
        next.assign(out, 0.0f);
        for (std::size_t o = 0; o < out; ++o) {
            const float *row = &weights[o * (in + 1)];
            float sum = row[in]; // bias
            for (std::size_t i = 0; i < in; ++i)
                sum += row[i] * current[i];
            next[o] = activate(sum);
        }
        current.swap(next);
    }
    return current;
}

std::size_t
Mlp::weightCount() const
{
    std::size_t count = 0;
    for (const auto &layer : weightsPerLayer)
        count += layer.size();
    return count;
}

std::size_t
Mlp::macsPerForward() const
{
    std::size_t macs = 0;
    for (std::size_t l = 1; l < topo.size(); ++l)
        macs += topo[l] * (topo[l - 1] + 1);
    return macs;
}

std::size_t
Mlp::sigmoidsPerForward() const
{
    std::size_t sigmoids = 0;
    for (std::size_t l = 1; l < topo.size(); ++l)
        sigmoids += topo[l];
    return sigmoids;
}

float
Mlp::weight(std::size_t layer, std::size_t to, std::size_t from) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    const std::size_t in = topo[layer - 1];
    MITHRA_EXPECTS(to < topo[layer] && from <= in, "bad weight index");
    return weightsPerLayer[layer - 1][to * (in + 1) + from];
}

void
Mlp::setWeight(std::size_t layer, std::size_t to, std::size_t from,
               float value)
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    const std::size_t in = topo[layer - 1];
    MITHRA_EXPECTS(to < topo[layer] && from <= in, "bad weight index");
    weightsPerLayer[layer - 1][to * (in + 1) + from] = value;
}

std::vector<float> &
Mlp::layerWeights(std::size_t layer)
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return weightsPerLayer[layer - 1];
}

const std::vector<float> &
Mlp::layerWeights(std::size_t layer) const
{
    MITHRA_EXPECTS(layer >= 1 && layer < topo.size(), "bad layer ", layer);
    return weightsPerLayer[layer - 1];
}

} // namespace mithra::npu
