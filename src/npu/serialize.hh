/**
 * @file
 * Serialization of NPU configurations.
 *
 * The paper's workflow generates the accelerator configuration at
 * compile time and encodes it in the program binary (§III); the OS
 * saves/restores it as architectural state. This module provides that
 * persistence for the trained networks: a small, versioned,
 * line-oriented text format that round-trips Mlp weights, the linear
 * input/output scalers and whole Approximator bundles exactly
 * (floats are stored in hex-float form).
 */

#pragma once

#include <iosfwd>
#include <string>

#include "npu/approximator.hh"
#include "npu/mlp.hh"

namespace mithra::npu
{

/** Write a network's topology and weights. */
void saveMlp(std::ostream &out, const Mlp &mlp);

/** Read back a network written by saveMlp; fatal() on format errors. */
Mlp loadMlp(std::istream &in);

/** Write a scaler's per-element bounds. */
void saveScaler(std::ostream &out, const LinearScaler &scaler);

/** Read back a scaler written by saveScaler. */
LinearScaler loadScaler(std::istream &in);

/** Write a trained approximator (scalers + network). */
void saveApproximator(std::ostream &out, const Approximator &approximator);

/** Read back an approximator written by saveApproximator. */
Approximator loadApproximator(std::istream &in);

/** Convenience: file-based wrappers (fatal() on I/O errors). */
void saveApproximatorFile(const std::string &path,
                          const Approximator &approximator);
Approximator loadApproximatorFile(const std::string &path);

} // namespace mithra::npu

