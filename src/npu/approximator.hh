/**
 * @file
 * The trained NPU configuration: an MLP plus the linear input/output
 * scaling the compiler wraps around it.
 *
 * The accelerator operates on normalized values; the compiler derives
 * per-element input ranges and per-element output ranges from the
 * training data, maps inputs into [0, 1] and maps sigmoid outputs in
 * [margin, 1 - margin] back to application units. This is the object
 * a benchmark invokes in place of its safe-to-approximate function.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/contracts.hh"
#include "common/vec.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

namespace mithra::npu
{

/** Per-element linear range mapping. */
class LinearScaler
{
  public:
    LinearScaler() = default;

    /** Construct from known bounds (tests, serialization). */
    LinearScaler(std::vector<float> lowsIn, std::vector<float> highsIn);

    /** Fit per-element [lo, hi] from a batch. */
    void fit(const VecBatch &batch);

    /** Map raw values into [0, 1] element-wise (clamped). */
    Vec toUnit(const Vec &raw) const;

    /**
     * toUnit() into a caller-owned buffer of at least width() floats
     * (allocation-free hot path; `out` may not alias `raw`).
     */
    void toUnitInto(std::span<const float> raw, float *out) const;

    /** Map unit-range values back to raw units. */
    Vec fromUnit(const Vec &unit) const;

    std::size_t width() const { return lows.size(); }
    const std::vector<float> &lowerBounds() const { return lows; }
    const std::vector<float> &upperBounds() const { return highs; }

  private:
    std::vector<float> lows;
    std::vector<float> highs;
};

/** A trained, scaled MLP acting as the approximate accelerator. */
class Approximator
{
  public:
    /** Output sigmoid headroom: targets are mapped into this band. */
    static constexpr float outputMargin = 0.1f;

    Approximator() = default;

    /**
     * Fit scalers and train the network to mimic `outputs = f(inputs)`.
     *
     * @return the final training MSE in normalized units.
     */
    double trainToMimic(const Topology &topology, const VecBatch &inputs,
                        const VecBatch &outputs,
                        const TrainerOptions &options);

    /** Approximate one invocation (raw units in, raw units out). */
    Vec invoke(const Vec &input) const;

    /** The underlying network. */
    const Mlp &network() const { return *net; }

    /**
     * Mutable access to the underlying network — for the fault
     * injection harness, which flips weight bits to model accelerator
     * decay. Requires trained().
     */
    Mlp &mutableNetwork()
    {
        MITHRA_EXPECTS(net != nullptr,
                       "no network to mutate before training");
        return *net;
    }

    /** True after trainToMimic succeeded. */
    bool trained() const { return net != nullptr; }

    /** Rebuild from persisted parts (serialization). */
    static Approximator fromParts(LinearScaler inputScaler,
                                  LinearScaler outputScaler, Mlp net);

    /** The input-side scaler (serialization). */
    const LinearScaler &inputScalerRef() const { return inputScaler; }
    /** The output-side scaler (serialization). */
    const LinearScaler &outputScalerRef() const { return outputScaler; }

  private:
    LinearScaler inputScaler;
    LinearScaler outputScaler;
    std::shared_ptr<Mlp> net;
};

} // namespace mithra::npu

