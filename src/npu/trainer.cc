#include "npu/trainer.hh"

#include <cmath>
#include <span>

#include "common/contracts.hh"
#include "common/kernels/kernels.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "telemetry/telemetry.hh"

namespace mithra::npu
{

void
initWeights(Mlp &mlp, std::uint64_t seed)
{
    Rng rng(seed);
    const auto &topo = mlp.topology();
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const auto fanIn = static_cast<double>(topo[l - 1] + 1);
        const double bound = std::sqrt(3.0 / fanIn);
        auto &weights = mlp.layerWeights(l);
        auto &bias = mlp.layerBias(l);
        const std::size_t stride = mlp.layerStride(l);
        const std::size_t in = topo[l - 1];
        // Draw order matches the historical row-major bias-last flat
        // layout, so a given seed still produces the same network.
        for (std::size_t o = 0; o < topo[l]; ++o) {
            float *row = &weights[o * stride];
            for (std::size_t i = 0; i < in; ++i)
                row[i] = static_cast<float>(rng.uniform(-bound, bound));
            bias[o] = static_cast<float>(rng.uniform(-bound, bound));
        }
    }
}

namespace
{

/**
 * Samples per minibatch chunk. This — not the thread count — fixes
 * how gradients associate when chunk partials are reduced in index
 * order, so trained weights are bitwise identical at any
 * MITHRA_THREADS setting.
 */
constexpr std::size_t sampleGrain = 4;

/**
 * Everything one minibatch chunk touches: forward activations, delta
 * buffers and a private gradient accumulator. Prepared once per
 * training run; the epoch loop performs no allocations.
 */
struct ChunkWorkspace
{
    ForwardScratch scratch;
    std::vector<Vec> deltas;
    /** Per-layer weight gradient, padded SoA like the weights. */
    std::vector<kernels::AlignedVec> gradient;
    /** Per-layer bias gradient. */
    std::vector<std::vector<float>> biasGradient;
    double squaredErrorSum = 0.0;
    std::size_t elementCount = 0;

    void prepare(const Mlp &mlp)
    {
        const auto &topo = mlp.topology();
        scratch.prepare(topo);
        deltas.resize(topo.size() - 1);
        gradient.resize(topo.size() - 1);
        biasGradient.resize(topo.size() - 1);
        for (std::size_t l = 1; l < topo.size(); ++l) {
            deltas[l - 1].assign(topo[l], 0.0f);
            gradient[l - 1].assign(mlp.layerWeights(l).size(), 0.0f);
            biasGradient[l - 1].assign(topo[l], 0.0f);
        }
    }

    void beginBatchChunk()
    {
        for (auto &layerGrad : gradient)
            std::fill(layerGrad.begin(), layerGrad.end(), 0.0f);
        for (auto &layerBiasGrad : biasGradient)
            std::fill(layerBiasGrad.begin(), layerBiasGrad.end(), 0.0f);
        squaredErrorSum = 0.0;
        elementCount = 0;
    }
};

/** Forward + backward pass of one sample, accumulated into `ws`. */
void
accumulateSample(const Mlp &mlp, const Vec &input, const Vec &target,
                 ChunkWorkspace &ws)
{
    const auto &topo = mlp.topology();
    forwardTrace(mlp, input, ws.scratch);
    const std::span<const float> output = ws.scratch.output();
    MITHRA_ASSERT(target.size() == output.size(),
                  "target width mismatch");

    // Output layer deltas: (y - t) * y * (1 - y).
    const std::size_t last = topo.size() - 1;
    for (std::size_t o = 0; o < output.size(); ++o) {
        const float err = output[o] - target[o];
        ws.squaredErrorSum += static_cast<double>(err) * err;
        ws.deltas[last - 1][o] = err * output[o] * (1.0f - output[o]);
    }
    ws.elementCount += output.size();

    // Hidden layer deltas, back to front. The column walk over the
    // next layer's matrix is strided and stays scalar; the sum order
    // is unchanged from the original implementation.
    for (std::size_t l = last; l-- > 1;) {
        const std::size_t width = topo[l];
        const std::size_t nextWidth = topo[l + 1];
        const auto &nextWeights = mlp.layerWeights(l + 1);
        const std::size_t nextStride = mlp.layerStride(l + 1);
        const kernels::AlignedVec &act = ws.scratch.activations[l];
        for (std::size_t h = 0; h < width; ++h) {
            float sum = 0.0f;
            for (std::size_t o = 0; o < nextWidth; ++o) {
                sum += nextWeights[o * nextStride + h]
                    * ws.deltas[l][o];
            }
            ws.deltas[l - 1][h] = sum * act[h] * (1.0f - act[h]);
        }
    }

    // Accumulate gradients: one axpy per output neuron over the full
    // padded row. prev's padding lanes are +0.0f, so the gradient's
    // padding stays +0.0f (delta * 0 contributes a signed zero and
    // +0 + ±0 == +0 under round-to-nearest).
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t out = topo[l];
        const std::size_t stride = mlp.layerStride(l);
        const kernels::AlignedVec &prev = ws.scratch.activations[l - 1];
        auto &layerGrad = ws.gradient[l - 1];
        auto &layerBiasGrad = ws.biasGradient[l - 1];
        for (std::size_t o = 0; o < out; ++o) {
            const float delta = ws.deltas[l - 1][o];
            kernels::axpy(delta, prev.data(), &layerGrad[o * stride],
                          stride);
            layerBiasGrad[o] += delta;
        }
    }
}

} // namespace

double
train(Mlp &mlp, const VecBatch &inputs, const VecBatch &targets,
      const TrainerOptions &options)
{
    MITHRA_EXPECTS(inputs.size() == targets.size(),
                   "inputs/targets size mismatch");
    MITHRA_EXPECTS(!inputs.empty(), "cannot train on an empty dataset");
    MITHRA_EXPECTS(options.batchSize > 0, "batch size must be positive");
    MITHRA_EXPECTS(options.learningRate > 0.0f
                       && std::isfinite(options.learningRate),
                   "learning rate must be positive and finite, got ",
                   options.learningRate);

    MITHRA_SPAN("npu.train");
    MITHRA_COUNT("npu.train.runs", 1);

    const auto &topo = mlp.topology();
    Rng rng(options.seed ^ 0x7261696e6572ULL);

    // Momentum velocity and the reduced gradient, same (padded) shape
    // as the weights plus separate bias arrays; all buffers are
    // reserved once, before the epoch loop.
    std::vector<kernels::AlignedVec> velocity;
    std::vector<kernels::AlignedVec> gradient;
    std::vector<std::vector<float>> biasVelocity;
    std::vector<std::vector<float>> biasGradient;
    for (std::size_t l = 1; l < topo.size(); ++l) {
        velocity.emplace_back(mlp.layerWeights(l).size(), 0.0f);
        gradient.emplace_back(mlp.layerWeights(l).size(), 0.0f);
        biasVelocity.emplace_back(topo[l], 0.0f);
        biasGradient.emplace_back(topo[l], 0.0f);
    }

    const std::size_t chunksPerBatch =
        (options.batchSize + sampleGrain - 1) / sampleGrain;
    std::vector<ChunkWorkspace> workspaces(chunksPerBatch);
    for (auto &ws : workspaces)
        ws.prepare(mlp);

    double epochMse = 0.0;
    float learningRate = options.learningRate;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        const auto order = rng.permutation(inputs.size());
        double squaredErrorSum = 0.0;
        std::size_t elementCount = 0;

        MITHRA_COUNT("npu.train.epochs", 1);
        MITHRA_COUNT("npu.train.samples", order.size());
        for (std::size_t start = 0; start < order.size();
             start += options.batchSize) {
            MITHRA_COUNT("npu.train.gradient_steps", 1);
            const std::size_t end =
                std::min(start + options.batchSize, order.size());
            // Bulk MAC accounting (forward + gradient accumulation);
            // the kernels themselves never count per call.
            MITHRA_COUNT("npu.train.macs",
                         (end - start) * 2 * mlp.macsPerForward());

            // Data-parallel minibatch: every chunk accumulates into
            // its own gradient buffer against the frozen weights.
            parallelForChunks(
                start, end, sampleGrain,
                [&](std::size_t chunkBegin, std::size_t chunkEnd,
                    std::size_t chunk) {
                    ChunkWorkspace &ws = workspaces[chunk];
                    ws.beginBatchChunk();
                    for (std::size_t k = chunkBegin; k < chunkEnd; ++k) {
                        const std::size_t idx = order[k];
                        accumulateSample(mlp, inputs[idx], targets[idx],
                                         ws);
                    }
                });

            // Ordered reduction in chunk-index order.
            const std::size_t usedChunks =
                (end - start + sampleGrain - 1) / sampleGrain;
            for (auto &layerGrad : gradient)
                std::fill(layerGrad.begin(), layerGrad.end(), 0.0f);
            for (auto &layerBiasGrad : biasGradient)
                std::fill(layerBiasGrad.begin(), layerBiasGrad.end(),
                          0.0f);
            for (std::size_t chunk = 0; chunk < usedChunks; ++chunk) {
                const ChunkWorkspace &ws = workspaces[chunk];
                squaredErrorSum += ws.squaredErrorSum;
                elementCount += ws.elementCount;
                for (std::size_t l = 0; l < gradient.size(); ++l) {
                    kernels::addInPlace(gradient[l].data(),
                                        ws.gradient[l].data(),
                                        gradient[l].size());
                    kernels::addInPlace(biasGradient[l].data(),
                                        ws.biasGradient[l].data(),
                                        biasGradient[l].size());
                }
            }

            // Apply the momentum SGD update for this minibatch. The
            // gradient's padding lanes are +0.0f, so velocity and
            // weight padding stay +0.0f too.
            const float scale = learningRate
                / static_cast<float>(end - start);
            for (std::size_t l = 1; l < topo.size(); ++l) {
                auto &weights = mlp.layerWeights(l);
                kernels::sgdMomentumStep(
                    options.momentum, scale, gradient[l - 1].data(),
                    velocity[l - 1].data(), weights.data(),
                    weights.size());
                auto &bias = mlp.layerBias(l);
                kernels::sgdMomentumStep(
                    options.momentum, scale,
                    biasGradient[l - 1].data(),
                    biasVelocity[l - 1].data(), bias.data(),
                    bias.size());
            }
        }

        epochMse = squaredErrorSum
            / static_cast<double>(std::max<std::size_t>(elementCount, 1));
        MITHRA_ENSURES(std::isfinite(epochMse),
                       "training diverged: non-finite MSE after epoch ",
                       epoch, " (learning rate ", learningRate, ")");
        // Deterministic: the ordered chunk reduction makes epochMse
        // bitwise identical at any MITHRA_THREADS.
        MITHRA_HIST("npu.train.epoch_mse", 0.0, 0.25, 25, epochMse);
        if (options.targetMse > 0.0 && epochMse < options.targetMse)
            break;
        learningRate *= options.lrDecay;
    }
    // No final-MSE gauge here: trainings may run concurrently (the
    // experiment runner prefetches workloads across the pool), so a
    // shared last-write-wins value would be completion-order
    // dependent. The epoch-MSE histogram above already captures the
    // distribution order-independently, and the pipeline records the
    // final MSE in a per-benchmark gauge.
    return epochMse;
}

double
meanSquaredError(const Mlp &mlp, const VecBatch &inputs,
                 const VecBatch &targets)
{
    MITHRA_EXPECTS(inputs.size() == targets.size(),
                   "inputs/targets size mismatch");
    if (inputs.empty())
        return 0.0;

    struct Partial
    {
        double sum = 0.0;
        std::size_t count = 0;
    };

    MITHRA_COUNT("npu.eval.macs",
                 inputs.size() * mlp.macsPerForward());
    constexpr std::size_t grain = 512;
    const std::size_t chunks = (inputs.size() + grain - 1) / grain;
    std::vector<Partial> partials(chunks);
    parallelForChunks(
        0, inputs.size(), grain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            ForwardScratch scratch;
            scratch.prepare(mlp.topology());
            Partial partial;
            for (std::size_t i = begin; i < end; ++i) {
                forwardTrace(mlp, inputs[i], scratch);
                const std::span<const float> out = scratch.output();
                for (std::size_t o = 0; o < out.size(); ++o) {
                    const double err = static_cast<double>(out[o])
                        - targets[i][o];
                    partial.sum += err * err;
                }
                partial.count += out.size();
            }
            partials[chunk] = partial;
        });

    Partial total;
    for (const auto &partial : partials) {
        total.sum += partial.sum;
        total.count += partial.count;
    }
    return total.count ? total.sum / static_cast<double>(total.count)
                       : 0.0;
}

} // namespace mithra::npu
