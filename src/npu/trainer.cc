#include "npu/trainer.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mithra::npu
{

void
initWeights(Mlp &mlp, std::uint64_t seed)
{
    Rng rng(seed);
    const auto &topo = mlp.topology();
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const auto fanIn = static_cast<double>(topo[l - 1] + 1);
        const double bound = std::sqrt(3.0 / fanIn);
        auto &weights = mlp.layerWeights(l);
        for (auto &w : weights)
            w = static_cast<float>(rng.uniform(-bound, bound));
    }
}

namespace
{

/** Per-layer activations for one forward pass, input included. */
struct ForwardTrace
{
    std::vector<Vec> activations;
};

ForwardTrace
forwardTrace(const Mlp &mlp, const Vec &input)
{
    const auto &topo = mlp.topology();
    ForwardTrace trace;
    trace.activations.reserve(topo.size());
    trace.activations.push_back(input);

    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t in = topo[l - 1];
        const std::size_t out = topo[l];
        const auto &weights = mlp.layerWeights(l);
        const Vec &prev = trace.activations.back();
        Vec next(out);
        for (std::size_t o = 0; o < out; ++o) {
            const float *row = &weights[o * (in + 1)];
            float sum = row[in];
            for (std::size_t i = 0; i < in; ++i)
                sum += row[i] * prev[i];
            next[o] = Mlp::activate(sum);
        }
        trace.activations.push_back(std::move(next));
    }
    return trace;
}

} // namespace

double
train(Mlp &mlp, const VecBatch &inputs, const VecBatch &targets,
      const TrainerOptions &options)
{
    MITHRA_ASSERT(inputs.size() == targets.size(),
                  "inputs/targets size mismatch");
    MITHRA_ASSERT(!inputs.empty(), "cannot train on an empty dataset");
    MITHRA_ASSERT(options.batchSize > 0, "batch size must be positive");

    const auto &topo = mlp.topology();
    Rng rng(options.seed ^ 0x7261696e6572ULL);

    // Momentum velocity, same shape as the weights.
    std::vector<std::vector<float>> velocity;
    std::vector<std::vector<float>> gradient;
    for (std::size_t l = 1; l < topo.size(); ++l) {
        velocity.emplace_back(mlp.layerWeights(l).size(), 0.0f);
        gradient.emplace_back(mlp.layerWeights(l).size(), 0.0f);
    }

    // Per-layer delta buffers.
    std::vector<Vec> deltas;
    for (std::size_t l = 1; l < topo.size(); ++l)
        deltas.emplace_back(topo[l], 0.0f);

    double epochMse = 0.0;
    float learningRate = options.learningRate;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        const auto order = rng.permutation(inputs.size());
        double squaredErrorSum = 0.0;
        std::size_t elementCount = 0;

        for (std::size_t start = 0; start < order.size();
             start += options.batchSize) {
            const std::size_t end =
                std::min(start + options.batchSize, order.size());

            for (auto &layerGrad : gradient)
                std::fill(layerGrad.begin(), layerGrad.end(), 0.0f);

            for (std::size_t k = start; k < end; ++k) {
                const std::size_t idx = order[k];
                const auto trace = forwardTrace(mlp, inputs[idx]);
                const Vec &output = trace.activations.back();
                const Vec &target = targets[idx];
                MITHRA_ASSERT(target.size() == output.size(),
                              "target width mismatch");

                // Output layer deltas: (y - t) * y * (1 - y).
                const std::size_t last = topo.size() - 1;
                for (std::size_t o = 0; o < output.size(); ++o) {
                    const float err = output[o] - target[o];
                    squaredErrorSum += static_cast<double>(err) * err;
                    deltas[last - 1][o] =
                        err * output[o] * (1.0f - output[o]);
                }
                elementCount += output.size();

                // Hidden layer deltas, back to front.
                for (std::size_t l = last; l-- > 1;) {
                    const std::size_t width = topo[l];
                    const std::size_t nextWidth = topo[l + 1];
                    const auto &nextWeights = mlp.layerWeights(l + 1);
                    const Vec &act = trace.activations[l];
                    for (std::size_t h = 0; h < width; ++h) {
                        float sum = 0.0f;
                        for (std::size_t o = 0; o < nextWidth; ++o) {
                            sum += nextWeights[o * (width + 1) + h]
                                * deltas[l][o];
                        }
                        deltas[l - 1][h] = sum * act[h] * (1.0f - act[h]);
                    }
                }

                // Accumulate gradients.
                for (std::size_t l = 1; l < topo.size(); ++l) {
                    const std::size_t in = topo[l - 1];
                    const std::size_t out = topo[l];
                    const Vec &prev = trace.activations[l - 1];
                    auto &layerGrad = gradient[l - 1];
                    for (std::size_t o = 0; o < out; ++o) {
                        const float delta = deltas[l - 1][o];
                        float *row = &layerGrad[o * (in + 1)];
                        for (std::size_t i = 0; i < in; ++i)
                            row[i] += delta * prev[i];
                        row[in] += delta;
                    }
                }
            }

            // Apply the momentum SGD update for this minibatch.
            const float scale = learningRate
                / static_cast<float>(end - start);
            for (std::size_t l = 1; l < topo.size(); ++l) {
                auto &weights = mlp.layerWeights(l);
                auto &vel = velocity[l - 1];
                const auto &layerGrad = gradient[l - 1];
                for (std::size_t w = 0; w < weights.size(); ++w) {
                    vel[w] = options.momentum * vel[w]
                        - scale * layerGrad[w];
                    weights[w] += vel[w];
                }
            }
        }

        epochMse = squaredErrorSum
            / static_cast<double>(std::max<std::size_t>(elementCount, 1));
        if (options.targetMse > 0.0 && epochMse < options.targetMse)
            break;
        learningRate *= options.lrDecay;
    }
    return epochMse;
}

double
meanSquaredError(const Mlp &mlp, const VecBatch &inputs,
                 const VecBatch &targets)
{
    MITHRA_ASSERT(inputs.size() == targets.size(),
                  "inputs/targets size mismatch");
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Vec out = mlp.forward(inputs[i]);
        for (std::size_t o = 0; o < out.size(); ++o) {
            const double err = static_cast<double>(out[o])
                - targets[i][o];
            sum += err * err;
        }
        count += out.size();
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

} // namespace mithra::npu
