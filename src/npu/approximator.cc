#include "npu/approximator.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/contracts.hh"

namespace mithra::npu
{

LinearScaler::LinearScaler(std::vector<float> lowsIn,
                           std::vector<float> highsIn)
    : lows(std::move(lowsIn)), highs(std::move(highsIn))
{
    MITHRA_EXPECTS(lows.size() == highs.size(),
                   "mismatched scaler bounds");
    for (std::size_t i = 0; i < lows.size(); ++i)
        MITHRA_EXPECTS(highs[i] > lows[i], "empty range at element ", i);
}

void
LinearScaler::fit(const VecBatch &batch)
{
    MITHRA_EXPECTS(!batch.empty(), "cannot fit a scaler to no data");
    const std::size_t n = batch.front().size();
    lows.assign(n, std::numeric_limits<float>::max());
    highs.assign(n, std::numeric_limits<float>::lowest());
    for (const auto &vec : batch) {
        MITHRA_EXPECTS(vec.size() == n, "ragged batch in scaler fit");
        for (std::size_t i = 0; i < n; ++i) {
            lows[i] = std::min(lows[i], vec[i]);
            highs[i] = std::max(highs[i], vec[i]);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!(highs[i] > lows[i]))
            highs[i] = lows[i] + 1.0f;
    }
}

Vec
LinearScaler::toUnit(const Vec &raw) const
{
    Vec unit(raw.size());
    toUnitInto(raw, unit.data());
    return unit;
}

void
LinearScaler::toUnitInto(std::span<const float> raw, float *out) const
{
    MITHRA_EXPECTS(raw.size() == lows.size(), "scaler width mismatch");
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const float t = (raw[i] - lows[i]) / (highs[i] - lows[i]);
        out[i] = std::clamp(t, 0.0f, 1.0f);
    }
}

Vec
LinearScaler::fromUnit(const Vec &unit) const
{
    MITHRA_EXPECTS(unit.size() == lows.size(), "scaler width mismatch");
    Vec raw(unit.size());
    for (std::size_t i = 0; i < unit.size(); ++i)
        raw[i] = lows[i] + unit[i] * (highs[i] - lows[i]);
    return raw;
}

double
Approximator::trainToMimic(const Topology &topology, const VecBatch &inputs,
                           const VecBatch &outputs,
                           const TrainerOptions &options)
{
    MITHRA_EXPECTS(!topology.empty(), "empty topology");
    MITHRA_EXPECTS(inputs.size() == outputs.size(),
                   "inputs/outputs size mismatch");
    MITHRA_EXPECTS(!inputs.empty(), "no training samples");
    MITHRA_EXPECTS(topology.front() == inputs.front().size(),
                   "topology input width ", topology.front(),
                   " != sample width ", inputs.front().size());
    MITHRA_EXPECTS(topology.back() == outputs.front().size(),
                   "topology output width ", topology.back(),
                   " != sample width ", outputs.front().size());

    inputScaler.fit(inputs);
    outputScaler.fit(outputs);

    VecBatch unitInputs;
    unitInputs.reserve(inputs.size());
    for (const auto &vec : inputs)
        unitInputs.push_back(inputScaler.toUnit(vec));

    // Map output targets into [margin, 1 - margin] so the sigmoid can
    // actually reach them.
    VecBatch unitTargets;
    unitTargets.reserve(outputs.size());
    const float span = 1.0f - 2.0f * outputMargin;
    for (const auto &vec : outputs) {
        Vec unit = outputScaler.toUnit(vec);
        for (auto &v : unit)
            v = outputMargin + v * span;
        unitTargets.push_back(std::move(unit));
    }

    net = std::make_shared<Mlp>(topology);
    initWeights(*net, options.seed);
    return train(*net, unitInputs, unitTargets, options);
}

Approximator
Approximator::fromParts(LinearScaler inputScalerIn,
                        LinearScaler outputScalerIn, Mlp netIn)
{
    MITHRA_EXPECTS(inputScalerIn.width() == netIn.topology().front(),
                   "input scaler width mismatch");
    MITHRA_EXPECTS(outputScalerIn.width() == netIn.topology().back(),
                   "output scaler width mismatch");
    Approximator out;
    out.inputScaler = std::move(inputScalerIn);
    out.outputScaler = std::move(outputScalerIn);
    out.net = std::make_shared<Mlp>(std::move(netIn));
    return out;
}

Vec
Approximator::invoke(const Vec &input) const
{
    MITHRA_EXPECTS(net, "Approximator used before training");
    // Thread-local scratch: invoke() runs concurrently from the
    // pipeline's parallel attach loop, and must stay allocation free
    // apart from the returned vector.
    thread_local Vec unitInput;
    thread_local ForwardScratch scratch;
    unitInput.resize(inputScaler.width());
    inputScaler.toUnitInto(input, unitInput.data());
    scratch.prepare(net->topology());
    forwardTrace(*net, unitInput, scratch);
    const std::span<const float> unitOut = scratch.output();
    Vec band(unitOut.size());
    const float span = 1.0f - 2.0f * outputMargin;
    for (std::size_t i = 0; i < unitOut.size(); ++i) {
        const float t = (unitOut[i] - outputMargin) / span;
        band[i] = std::clamp(t, 0.0f, 1.0f);
    }
    return outputScaler.fromUnit(band);
}

} // namespace mithra::npu
