#include "npu/serialize.hh"

#include <fstream>
#include <sstream>

#include "common/contracts.hh"

namespace mithra::npu
{

namespace
{

constexpr const char *mlpMagic = "mithra-mlp-v1";
constexpr const char *scalerMagic = "mithra-scaler-v1";
constexpr const char *approximatorMagic = "mithra-npu-v1";

void
expectToken(std::istream &in, const std::string &expected)
{
    std::string token;
    in >> token;
    if (in.fail() || token != expected) {
        fatal("NPU config parse error: expected `", expected,
              "', got `", token, "'");
    }
}

std::size_t
readCount(std::istream &in, const char *what)
{
    std::size_t value = 0;
    in >> value;
    if (in.fail())
        fatal("NPU config parse error: bad ", what);
    return value;
}

float
readFloat(std::istream &in)
{
    // Values are written as hexfloats; strtof parses them exactly.
    std::string token;
    in >> token;
    if (in.fail())
        fatal("NPU config parse error: missing float");
    char *end = nullptr;
    const float value = std::strtof(token.c_str(), &end);
    if (end == token.c_str())
        fatal("NPU config parse error: bad float `", token, "'");
    return value;
}

void
writeFloat(std::ostream &out, float value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(value));
    out << buf;
}

} // namespace

void
saveMlp(std::ostream &out, const Mlp &mlp)
{
    const auto &topo = mlp.topology();
    out << mlpMagic << '\n' << topo.size();
    for (std::size_t width : topo)
        out << ' ' << width;
    out << '\n';
    // On-disk format is the logical row-major layout, bias last per
    // row — independent of the in-memory padded SoA storage.
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t in = topo[l - 1];
        bool first = true;
        for (std::size_t o = 0; o < topo[l]; ++o) {
            for (std::size_t from = 0; from <= in; ++from) {
                if (!first)
                    out << ' ';
                first = false;
                writeFloat(out, mlp.weight(l, o, from));
            }
        }
        out << '\n';
    }
}

Mlp
loadMlp(std::istream &in)
{
    expectToken(in, mlpMagic);
    const std::size_t layers = readCount(in, "layer count");
    if (layers < 2)
        fatal("NPU config parse error: too few layers");
    Topology topo(layers);
    for (auto &width : topo)
        width = readCount(in, "layer width");

    Mlp mlp(topo);
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t fanIn = topo[l - 1];
        for (std::size_t o = 0; o < topo[l]; ++o)
            for (std::size_t from = 0; from <= fanIn; ++from)
                mlp.setWeight(l, o, from, readFloat(in));
    }
    return mlp;
}

void
saveScaler(std::ostream &out, const LinearScaler &scaler)
{
    out << scalerMagic << '\n' << scaler.width() << '\n';
    for (std::size_t i = 0; i < scaler.width(); ++i) {
        writeFloat(out, scaler.lowerBounds()[i]);
        out << ' ';
        writeFloat(out, scaler.upperBounds()[i]);
        out << '\n';
    }
}

LinearScaler
loadScaler(std::istream &in)
{
    expectToken(in, scalerMagic);
    const std::size_t width = readCount(in, "scaler width");
    std::vector<float> lows(width), highs(width);
    for (std::size_t i = 0; i < width; ++i) {
        lows[i] = readFloat(in);
        highs[i] = readFloat(in);
    }
    return LinearScaler(std::move(lows), std::move(highs));
}

void
saveApproximator(std::ostream &out, const Approximator &approximator)
{
    MITHRA_ASSERT(approximator.trained(),
                  "cannot save an untrained approximator");
    out << approximatorMagic << '\n';
    saveScaler(out, approximator.inputScalerRef());
    saveScaler(out, approximator.outputScalerRef());
    saveMlp(out, approximator.network());
}

Approximator
loadApproximator(std::istream &in)
{
    expectToken(in, approximatorMagic);
    LinearScaler inputScaler = loadScaler(in);
    LinearScaler outputScaler = loadScaler(in);
    Mlp net = loadMlp(in);
    return Approximator::fromParts(std::move(inputScaler),
                                   std::move(outputScaler),
                                   std::move(net));
}

void
saveApproximatorFile(const std::string &path,
                     const Approximator &approximator)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write NPU config to `", path, "'");
    saveApproximator(out, approximator);
}

Approximator
loadApproximatorFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read NPU config from `", path, "'");
    return loadApproximator(in);
}

} // namespace mithra::npu
