/**
 * @file
 * The statistical threshold optimizer (paper §III-A, Algorithm 1).
 *
 * Converts the programmer's *final* quality-loss requirement into a
 * *local* accelerator-error threshold th: an invocation is
 * approximable when every element of its output vector differs from
 * the precise result by at most th (Eq. 1). The optimizer maximizes
 * th (and therefore the accelerator invocation rate) subject to a
 * statistical guarantee: with confidence beta, at least a fraction S
 * of unseen datasets will meet the quality target — established with
 * the Clopper–Pearson exact method over the representative compile
 * datasets.
 */

#pragma once

#include <functional>
#include <vector>

#include "axbench/benchmark.hh"

namespace mithra::core
{

/** One compile dataset prepared for threshold evaluation. */
struct ThresholdEntry
{
    const axbench::Dataset *dataset;
    const axbench::InvocationTrace *trace;
    /** All-precise final output (the quality reference). */
    axbench::FinalOutput preciseFinal;
    /** Per-invocation max-abs accelerator error (cached). */
    std::vector<float> errors;
};

/** The profiled inputs Algorithm 1 iterates over. */
struct ThresholdProblem
{
    const axbench::Benchmark *benchmark = nullptr;
    std::vector<ThresholdEntry> entries;

    /** Build an entry from a dataset/trace pair (trace must have
     *  approximations attached). */
    static ThresholdEntry makeEntry(const axbench::Benchmark &benchmark,
                                    const axbench::Dataset &dataset,
                                    const axbench::InvocationTrace &trace);
};

/** The programmer-facing quality contract. */
struct QualitySpec
{
    /** Desired final quality loss, percent (e.g. 5.0). */
    double maxQualityLossPct = 5.0;
    /** Degree of confidence beta (e.g. 0.95). */
    double confidence = 0.95;
    /** Desired success rate S on unseen datasets (e.g. 0.90). */
    double successRate = 0.90;
};

/** Outcome of the optimization. */
struct ThresholdResult
{
    /** The tuned quality-control knob. */
    double threshold = 0.0;
    /** Clopper–Pearson lower bound achieved on the compile sets. */
    double successLowerBound = 0.0;
    /** Datasets meeting the quality target at this threshold. */
    std::size_t successes = 0;
    std::size_t trials = 0;
    /** Instrumented-program evaluations spent. */
    std::size_t iterations = 0;
    /** Fraction of invocations with error <= threshold (compile sets). */
    double invocationRate = 0.0;
};

/** Algorithm 1 with the Clopper–Pearson exact method. */
class ThresholdOptimizer
{
  public:
    explicit ThresholdOptimizer(const QualitySpec &spec);

    /**
     * Robust variant: bisection over the threshold, exploiting that
     * tightening th can only improve quality. This is the default the
     * pipeline uses.
     */
    ThresholdResult optimize(const ThresholdProblem &problem) const;

    /**
     * Literal Algorithm 1: start from an initial threshold and walk it
     * up/down by delta until the success bound straddles S.
     */
    ThresholdResult optimizeIterative(const ThresholdProblem &problem,
                                      double initial, double delta,
                                      std::size_t maxSteps = 200) const;

    /**
     * One instrumented evaluation (Algorithm 1 steps 2-4): apply the
     * threshold to every compile dataset and compute the
     * Clopper–Pearson success lower bound.
     */
    ThresholdResult evaluate(const ThresholdProblem &problem,
                             double threshold) const;

    const QualitySpec &spec() const { return qualitySpec; }

  private:
    QualitySpec qualitySpec;
};

/**
 * Multi-function extension (paper §III-A): when an application
 * offloads several functions to the accelerator, the optimizer
 * greedily finds a *tuple* of thresholds — functions are visited in
 * order and each threshold is maximized while all previously fixed
 * thresholds stay in place and the joint quality contract holds.
 * As the paper notes, the greedy choice is suboptimal as the number
 * of offloaded functions grows.
 */
struct MultiFunctionResult
{
    std::vector<double> thresholds;
    double successLowerBound = 0.0;
    std::size_t successes = 0;
    std::size_t trials = 0;
    /** Joint invocation rate over all functions' invocations. */
    double invocationRate = 0.0;
};

/**
 * One compile dataset with one trace per offloaded function. The
 * recompose callback rebuilds the final output from all functions'
 * per-invocation decisions at once.
 */
struct MultiFunctionEntry
{
    std::vector<const axbench::InvocationTrace *> traces;
    axbench::FinalOutput preciseFinal;
    /** errors[f][i] = function f's invocation-i max-abs error. */
    std::vector<std::vector<float>> errors;
    /** Rebuild the final output from per-function decision vectors. */
    std::function<axbench::FinalOutput(
        const std::vector<std::vector<std::uint8_t>> &)>
        recompose;
};

struct MultiFunctionProblem
{
    axbench::QualityMetric metric = axbench::QualityMetric::AvgRelativeError;
    std::vector<MultiFunctionEntry> entries;
};

class MultiFunctionOptimizer
{
  public:
    explicit MultiFunctionOptimizer(const QualitySpec &spec);

    /** Greedy per-function tuning (function order = trace order). */
    MultiFunctionResult optimize(const MultiFunctionProblem &problem) const;

    /** Evaluate a fixed tuple of thresholds. */
    MultiFunctionResult evaluate(const MultiFunctionProblem &problem,
                                 const std::vector<double> &thresholds)
        const;

  private:
    QualitySpec qualitySpec;
};

} // namespace mithra::core

