#include "core/table_classifier.hh"

#include "common/contracts.hh"
#include "compress/bdi.hh"

namespace mithra::core
{

TableClassifier::TableClassifier(hw::InputQuantizer quantizerIn,
                                 hw::TableEnsemble ensembleIn,
                                 double threshold, bool onlineUpdates)
    : quantizer(std::move(quantizerIn)), ensemble(std::move(ensembleIn)),
      errorThreshold(threshold), onlineUpdatesEnabled(onlineUpdates)
{
}

TableClassifier
TableClassifier::train(const TrainingData &data,
                       const TableClassifierOptions &options)
{
    MITHRA_EXPECTS(!data.rawInputs.empty(), "no training tuples");
    hw::InputQuantizer quantizer;
    quantizer.calibrate(data.rawInputs, options.quantizerBits);
    auto tuples = data.quantized(quantizer);
    auto ensemble = hw::trainGreedyEnsemble(options.geometry, tuples);
    return TableClassifier(std::move(quantizer), std::move(ensemble),
                           data.threshold, options.onlineUpdates);
}

bool
TableClassifier::decidePrecise(const Vec &input, std::size_t)
{
    return ensemble.decidePrecise(quantizer.quantize(input));
}

void
TableClassifier::decideBatch(const float *inputs, std::size_t width,
                             std::size_t count, std::size_t,
                             std::uint8_t *out)
{
    MITHRA_EXPECTS(width == quantizer.width(), "input width ", width,
                   " != calibrated width ", quantizer.width());
    // Quantize the whole slice in one kernel call, then let each table
    // hash the batch lane-parallel inside decideBatch. The scratch is
    // thread_local so concurrent shards (core/shard.hh) never share it
    // and block-sized calls cost no allocation after warm-up.
    static thread_local std::vector<std::uint8_t> codes;
    codes.resize(width * count);
    quantizer.quantizeBatch(inputs, count, codes.data());
    ensemble.decideBatch(codes.data(), width, count, out);
}

void
TableClassifier::observe(const Vec &input, float actualError)
{
    if (!onlineUpdatesEnabled)
        return;
    if (actualError > static_cast<float>(errorThreshold)) {
        ensemble.markPrecise(quantizer.quantize(input));
        ++updatesApplied;
    }
}

sim::ClassifierCost
TableClassifier::cost() const
{
    const auto numTables =
        static_cast<double>(ensemble.geometry().numTables);
    const auto inputs = static_cast<double>(quantizer.width());

    sim::ClassifierCost cost;
    // MISR hashing overlaps the FIFO enqueue of the inputs; the
    // accelerated path hides the decision entirely, the precise path
    // waits for the OR gate before the branch redirects.
    cost.extraCyclesAccel = 0.0;
    cost.extraCyclesPrecise = decisionLatencyCycles;
    cost.energyPjPerInvocation =
        numTables * (tableReadPj + inputs * misrStepPj);
    cost.sizeBytes = static_cast<double>(compressedSizeBytes());
    return cost;
}

std::size_t
TableClassifier::configSizeBytes() const
{
    // Compressed tables plus the quantizer ranges (two floats per
    // input element) and one MISR pool index per table.
    return compressedSizeBytes() + quantizer.width() * 8
        + ensemble.geometry().numTables;
}

std::size_t
TableClassifier::uncompressedSizeBytes() const
{
    return ensemble.geometry().totalBytes();
}

std::size_t
TableClassifier::compressedSizeBytes() const
{
    return compress::compressBuffer(ensemble.toBytes()).compressedBytes();
}

} // namespace mithra::core
