/**
 * @file
 * Classifier training data generation (paper §III-B).
 *
 * Once the threshold is tuned, the compiler samples accelerator
 * invocations from the representative datasets and labels each input
 * vector with one bit: does the accelerator's error on this input
 * exceed the threshold? The resulting tuple set is classifier
 * agnostic; the table-based design consumes the quantized codes and
 * the neural design consumes the raw input vectors.
 */

#pragma once

#include <cstdint>

#include "core/threshold_optimizer.hh"
#include "hw/decision_table.hh"
#include "hw/quantizer.hh"

namespace mithra::core
{

/** Labeled training set shared by both hardware classifiers. */
struct TrainingData
{
    /** Sampled raw accelerator input vectors. */
    VecBatch rawInputs;
    /** Labels (same order): 1 = run precise. */
    std::vector<std::uint8_t> labels;
    /** The threshold the labels were generated against. */
    double threshold = 0.0;

    /** Fraction of tuples labeled precise. */
    double preciseFraction() const;

    /** Quantize the samples into table-classifier tuples. */
    std::vector<hw::TrainingTuple> quantized(
        const hw::InputQuantizer &quantizer) const;
};

/**
 * Sample up to maxTuples invocations uniformly across the compile
 * datasets and label them against the threshold.
 */
TrainingData buildTrainingData(const ThresholdProblem &problem,
                               double threshold, std::size_t maxTuples,
                               std::uint64_t seed);

} // namespace mithra::core

