/**
 * @file
 * The MITHRA classifier interface (paper §II-B, §IV).
 *
 * A classifier maps one accelerator input vector to a binary decision:
 * invoke the accelerator, or branch back to the precise function. It
 * also reports the per-invocation cycle/energy overheads it adds to
 * the system and the configuration state that must be encoded in the
 * binary (and saved/restored on context switches).
 */

#pragma once

#include <cstdint>
#include <string>

#include "axbench/benchmark.hh"
#include "common/rng.hh"
#include "common/vec.hh"
#include "sim/system_sim.hh"

namespace mithra::core
{

/** Abstract quality-control classifier. */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /** Short kind name: "oracle", "table", "neural", "random". */
    virtual std::string kind() const = 0;

    /**
     * Called before iterating one dataset's invocations. The oracle
     * uses the trace to look up true accelerator errors; stateful
     * designs may reset here.
     */
    virtual void beginDataset(const axbench::InvocationTrace &trace);

    /**
     * Decide one invocation.
     *
     * @param input accelerator input vector (what the FIFO carries)
     * @param invocationIndex position within the current dataset
     * @return true when the precise function must run
     */
    virtual bool decidePrecise(const Vec &input,
                               std::size_t invocationIndex) = 0;

    /**
     * Decide `count` consecutive invocations whose inputs are stored
     * row-major in one flat buffer of `width` floats each, starting at
     * dataset position `beginIndex`: out[i] = 1 when invocation
     * beginIndex + i must run precise. Exactly equal to calling
     * decidePrecise() per row in ascending index order (the default
     * does just that); batch-capable designs override it with
     * vectorized kernels.
     *
     * Sharded-runtime contract: between beginDataset() and the next
     * observe(), decisions must be a pure function of (input, index) —
     * the sharded evaluator batches disjoint index ranges from
     * concurrent shards, so a classifier whose decision stream depends
     * on call order (a shared mutating RNG, say) would lose the
     * bitwise-reproducibility guarantee. Pseudo-random designs derive
     * per-decision draws from indexedBernoulli (common/rng.hh)
     * instead, exactly like the watchdog's audit schedule.
     */
    virtual void decideBatch(const float *inputs, std::size_t width,
                             std::size_t count, std::size_t beginIndex,
                             std::uint8_t *out);

    /**
     * Online feedback: the runtime sporadically samples the true
     * accelerator error (running both paths) and reports it here
     * (paper §IV-C.1). Default: ignore.
     */
    virtual void observe(const Vec &input, float actualError);

    /** Per-invocation overheads for the system simulator. */
    virtual sim::ClassifierCost cost() const = 0;

    /** Configuration bytes encoded in the binary. */
    virtual std::size_t configSizeBytes() const = 0;

    /**
     * Fail closed: when the compiler cannot certify the quality
     * contract even with maximally conservative training, it refuses
     * to deploy approximation at all — every decision becomes
     * "precise" (the special branch is always taken).
     */
    void disableApproximation() { approximationDisabled = true; }

    /** True when the compiler refused to deploy approximation. */
    bool approximationEnabled() const { return !approximationDisabled; }

  protected:
    bool approximationDisabled = false;
};

/**
 * The infeasible gold standard: for every invocation it knows the true
 * accelerator error and filters exactly those above the threshold
 * (paper §V-B.1). Adds no overhead.
 */
class OracleClassifier final : public Classifier
{
  public:
    explicit OracleClassifier(float threshold);

    std::string kind() const override { return "oracle"; }
    void beginDataset(const axbench::InvocationTrace &trace) override;
    bool decidePrecise(const Vec &input,
                       std::size_t invocationIndex) override;
    void decideBatch(const float *inputs, std::size_t width,
                     std::size_t count, std::size_t beginIndex,
                     std::uint8_t *out) override;
    sim::ClassifierCost cost() const override;
    std::size_t configSizeBytes() const override { return 0; }

    float threshold() const { return errorThreshold; }

  private:
    float errorThreshold;
    const axbench::InvocationTrace *currentTrace = nullptr;
};

/**
 * Input-oblivious baseline: routes a fixed fraction of invocations to
 * the precise function at random (paper §V-B.1, "comparison with
 * random filtering").
 *
 * The draw is counter-based — a pure function of (seed, dataset
 * ordinal, invocation index) through indexedBernoulli — so the
 * decision stream honours the sharded-runtime contract: any index
 * partition at any thread count reproduces the same decisions.
 */
class RandomFilterClassifier final : public Classifier
{
  public:
    /**
     * @param preciseFraction fraction of invocations run precisely
     * @param seed            deterministic stream seed
     */
    RandomFilterClassifier(double preciseFraction, std::uint64_t seed);

    std::string kind() const override { return "random"; }
    void beginDataset(const axbench::InvocationTrace &trace) override;
    bool decidePrecise(const Vec &input,
                       std::size_t invocationIndex) override;
    void decideBatch(const float *inputs, std::size_t width,
                     std::size_t count, std::size_t beginIndex,
                     std::uint8_t *out) override;
    sim::ClassifierCost cost() const override;
    std::size_t configSizeBytes() const override { return 8; }

  private:
    double fraction;
    std::uint64_t baseSeed;
    /** Per-dataset schedule seed (advanced by beginDataset). */
    std::uint64_t datasetSeed;
    std::uint64_t datasetOrdinal = 0;
};

} // namespace mithra::core

