#include "core/classifier.hh"

#include "common/contracts.hh"

namespace mithra::core
{

void
Classifier::beginDataset(const axbench::InvocationTrace &)
{
}

void
Classifier::decideBatch(const float *inputs, std::size_t width,
                        std::size_t count, std::size_t beginIndex,
                        std::uint8_t *out)
{
    // Reference semantics: one decidePrecise() per row, in ascending
    // index order so order-sensitive classifiers (the random filter
    // consumes one RNG draw per call) see the same stream as the
    // scalar loop they replace.
    Vec input;
    for (std::size_t i = 0; i < count; ++i) {
        input.assign(inputs + i * width, inputs + (i + 1) * width);
        out[i] = decidePrecise(input, beginIndex + i) ? 1 : 0;
    }
}

void
Classifier::observe(const Vec &, float)
{
}

OracleClassifier::OracleClassifier(float threshold)
    : errorThreshold(threshold)
{
    MITHRA_EXPECTS(threshold >= 0.0f, "negative oracle threshold");
}

void
OracleClassifier::beginDataset(const axbench::InvocationTrace &trace)
{
    MITHRA_EXPECTS(trace.hasApproximations(),
                   "oracle needs the accelerator outputs in the trace");
    currentTrace = &trace;
}

bool
OracleClassifier::decidePrecise(const Vec &, std::size_t invocationIndex)
{
    MITHRA_ASSERT(currentTrace, "oracle used without beginDataset");
    return currentTrace->maxAbsError(invocationIndex) > errorThreshold;
}

sim::ClassifierCost
OracleClassifier::cost() const
{
    return {}; // the oracle is free (and infeasible)
}

RandomFilterClassifier::RandomFilterClassifier(double preciseFraction,
                                               std::uint64_t seed)
    : fraction(preciseFraction), rng(seed)
{
    MITHRA_ASSERT(preciseFraction >= 0.0 && preciseFraction <= 1.0,
                  "precise fraction out of range: ", preciseFraction);
}

bool
RandomFilterClassifier::decidePrecise(const Vec &, std::size_t)
{
    return rng.bernoulli(fraction);
}

sim::ClassifierCost
RandomFilterClassifier::cost() const
{
    // A free-running LFSR and one compare.
    sim::ClassifierCost cost;
    cost.extraCyclesAccel = 0.0;
    cost.extraCyclesPrecise = 1.0;
    cost.energyPjPerInvocation = 0.5;
    cost.sizeBytes = 8.0;
    return cost;
}

} // namespace mithra::core
