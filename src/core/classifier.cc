#include "core/classifier.hh"

#include "common/contracts.hh"

namespace mithra::core
{

void
Classifier::beginDataset(const axbench::InvocationTrace &)
{
}

void
Classifier::decideBatch(const float *inputs, std::size_t width,
                        std::size_t count, std::size_t beginIndex,
                        std::uint8_t *out)
{
    // Reference semantics: one decidePrecise() per row, in ascending
    // index order — exactly the scalar loop this batch call replaces.
    Vec input;
    for (std::size_t i = 0; i < count; ++i) {
        input.assign(inputs + i * width, inputs + (i + 1) * width);
        out[i] = decidePrecise(input, beginIndex + i) ? 1 : 0;
    }
}

void
Classifier::observe(const Vec &, float)
{
}

OracleClassifier::OracleClassifier(float threshold)
    : errorThreshold(threshold)
{
    MITHRA_EXPECTS(threshold >= 0.0f, "negative oracle threshold");
}

void
OracleClassifier::beginDataset(const axbench::InvocationTrace &trace)
{
    MITHRA_EXPECTS(trace.hasApproximations(),
                   "oracle needs the accelerator outputs in the trace");
    currentTrace = &trace;
}

bool
OracleClassifier::decidePrecise(const Vec &, std::size_t invocationIndex)
{
    MITHRA_ASSERT(currentTrace, "oracle used without beginDataset");
    return currentTrace->maxAbsError(invocationIndex) > errorThreshold;
}

void
OracleClassifier::decideBatch(const float *, std::size_t,
                              std::size_t count, std::size_t beginIndex,
                              std::uint8_t *out)
{
    MITHRA_ASSERT(currentTrace, "oracle used without beginDataset");
    // The oracle ignores the inputs entirely: it reads the cached true
    // errors, so the batch path skips the per-row Vec copies of the
    // default implementation.
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = currentTrace->maxAbsError(beginIndex + i)
                > errorThreshold
            ? 1
            : 0;
    }
}

sim::ClassifierCost
OracleClassifier::cost() const
{
    return {}; // the oracle is free (and infeasible)
}

RandomFilterClassifier::RandomFilterClassifier(double preciseFraction,
                                               std::uint64_t seed)
    : fraction(preciseFraction), baseSeed(seed), datasetSeed(seed)
{
    MITHRA_ASSERT(preciseFraction >= 0.0 && preciseFraction <= 1.0,
                  "precise fraction out of range: ", preciseFraction);
}

void
RandomFilterClassifier::beginDataset(const axbench::InvocationTrace &)
{
    // A fresh SplitMix64 stream per dataset keeps consecutive datasets
    // decorrelated while the schedule stays a pure function of
    // (seed, dataset ordinal, invocation index).
    ++datasetOrdinal;
    std::uint64_t state =
        baseSeed ^ (datasetOrdinal * 0x632be59bd9b4e019ULL);
    datasetSeed = splitMix64(state);
}

bool
RandomFilterClassifier::decidePrecise(const Vec &,
                                      std::size_t invocationIndex)
{
    return indexedBernoulli(datasetSeed, invocationIndex, fraction);
}

void
RandomFilterClassifier::decideBatch(const float *, std::size_t,
                                    std::size_t count,
                                    std::size_t beginIndex,
                                    std::uint8_t *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = indexedBernoulli(datasetSeed, beginIndex + i, fraction)
            ? 1
            : 0;
    }
}

sim::ClassifierCost
RandomFilterClassifier::cost() const
{
    // A free-running LFSR and one compare.
    sim::ClassifierCost cost;
    cost.extraCyclesAccel = 0.0;
    cost.extraCyclesPrecise = 1.0;
    cost.energyPjPerInvocation = 0.5;
    cost.sizeBytes = 8.0;
    return cost;
}

} // namespace mithra::core
