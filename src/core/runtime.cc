#include "core/runtime.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/scale.hh"
#include "stats/clopper_pearson.hh"
#include "stats/summary.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core
{

std::size_t
ValidationSet::totalInvocations() const
{
    std::size_t total = 0;
    for (const auto &entry : entries)
        total += entry.trace->count();
    return total;
}

ValidationSet
makeValidationSet(const CompiledWorkload &workload, std::size_t count)
{
    const auto &bench = *workload.benchmark;
    if (count == 0)
        count = numValidationDatasets();

    // Validation datasets are seeded per index, so generation, tracing
    // and accelerator attachment fill pre-sized slots in parallel.
    ValidationSet set;
    set.entries.resize(count);
    parallelFor(0, count, 1, [&](std::size_t d) {
        ValidationEntry &entry = set.entries[d];
        entry.dataset = bench.makeDataset(
            axbench::validationSeed(bench.name(), d));
        entry.trace = std::make_unique<axbench::InvocationTrace>(
            bench.trace(*entry.dataset));
        entry.trace->attachApproximations(workload.accel);
        entry.preciseFinal = bench.preciseOutput(*entry.dataset,
                                                 *entry.trace);
    });
    return set;
}

Evaluator::Evaluator(const CompiledWorkload &workloadIn,
                     const QualitySpec &specIn, double thresholdIn,
                     const EvaluationOptions &optionsIn)
    : workload(workloadIn), spec(specIn), threshold(thresholdIn),
      options(optionsIn),
      systemSim(sim::CoreModel{workloadIn.coreParams},
                workloadIn.systemParams)
{
}

DesignEvaluation
Evaluator::evaluate(Classifier &classifier,
                    const ValidationSet &validation) const
{
    MITHRA_EXPECTS(!validation.entries.empty(), "empty validation set");
    const auto &bench = *workload.benchmark;

    DesignEvaluation eval;
    eval.kind = classifier.kind();
    eval.trials = validation.entries.size();

    Rng sampler(options.seed ^ 0x0b5e7feULL);
    std::vector<double> losses;
    losses.reserve(eval.trials);

    // The watchdog treats the validation suite as one long deployment
    // stream: state and audit indices persist across datasets. The
    // whole decision loop below is serial, so the audit schedule (a
    // pure function of seed and stream index) is independent of
    // MITHRA_THREADS.
    std::optional<watchdog::Watchdog> dog;
    if (options.watchdog.enabled)
        dog.emplace(options.watchdog, threshold);

    std::size_t accelTotal = 0;
    std::size_t invocationTotal = 0;
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;

    std::vector<std::uint8_t> decisions;
    for (const auto &entry : validation.entries) {
        const auto &trace = *entry.trace;
        classifier.beginDataset(trace);

        decisions.assign(trace.count(), 0);
        std::size_t numAccel = 0;
        std::size_t auditPreciseRuns = 0;
        std::size_t shadowAccelRuns = 0;
        for (std::size_t i = 0; i < trace.count(); ++i) {
            const Vec input = trace.inputVec(i);
            bool precise = !classifier.approximationEnabled()
                || classifier.decidePrecise(input, i);

            if (dog) {
                // The watchdog may overrule the classifier (DEGRADED
                // forces the precise path) and may schedule an audit,
                // served here from the trace's cached true error.
                const watchdog::Routing routing = dog->route(!precise);
                if (routing.auditPrecise)
                    ++auditPreciseRuns;
                if (routing.auditShadowAccel)
                    ++shadowAccelRuns;
                if (routing.audited())
                    dog->reportAudit(trace.maxAbsError(i));
                precise = !routing.useAccel;
            }

            decisions[i] = precise ? 0 : 1;
            numAccel += precise ? 0 : 1;

            // Oracle comparison for false-decision accounting.
            const bool oraclePrecise =
                trace.maxAbsError(i) > static_cast<float>(threshold);
            if (precise && !oraclePrecise)
                ++falsePositives;
            else if (!precise && oraclePrecise)
                ++falseNegatives;

            // Sporadic online sampling: run both paths, report the
            // true error (paper §IV-C.1).
            if (options.onlineSampleRate > 0.0
                && sampler.bernoulli(options.onlineSampleRate)) {
                classifier.observe(input, trace.maxAbsError(i));
            }
        }

        accelTotal += numAccel;
        invocationTotal += trace.count();

        const auto final = bench.recompose(*entry.dataset, trace,
                                           decisions);
        const double loss = axbench::qualityLoss(
            bench.metric(), entry.preciseFinal, final);
        losses.push_back(loss);
        if (loss <= spec.maxQualityLossPct)
            ++eval.successes;

        // Cost accounting for this dataset. Audits are not free: an
        // audited accelerated invocation also runs the precise
        // function, and a DEGRADED shadow audit also runs the (gated)
        // accelerator. They are charged as overhead on top of run()
        // because they duplicate work without changing routing.
        const auto totals = systemSim.run(
            workload.profile, classifier.cost(), numAccel,
            trace.count() - numAccel);
        const auto audit = systemSim.auditOverhead(
            workload.profile, auditPreciseRuns, shadowAccelRuns);
        const auto baseline = systemSim.baseline(workload.profile);
        eval.totals.cycles += totals.cycles + audit.cycles;
        eval.totals.energyPj += totals.energyPj + audit.energyPj;
        eval.baselineTotals.cycles += baseline.cycles;
        eval.baselineTotals.energyPj += baseline.energyPj;
    }

    eval.meanQualityLoss = stats::mean(losses);
    eval.p99QualityLoss = stats::percentile(losses, 99.0);
    eval.successLowerBound = stats::clopperPearsonLower(
        eval.successes, eval.trials, spec.confidence);
    eval.invocationRate = invocationTotal
        ? static_cast<double>(accelTotal)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.falsePositiveRate = invocationTotal
        ? static_cast<double>(falsePositives)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.falseNegativeRate = invocationTotal
        ? static_cast<double>(falseNegatives)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.speedup = sim::speedup(eval.baselineTotals, eval.totals);
    eval.energyReduction = sim::energyReduction(eval.baselineTotals,
                                                eval.totals);
    eval.edpImprovement = sim::edpImprovement(eval.baselineTotals,
                                              eval.totals);
    if (dog) {
        eval.watchdogEnabled = true;
        eval.watchdog = dog->snapshot();
        MITHRA_GAUGE_SET("watchdog.final_state",
                         static_cast<double>(eval.watchdog.state));
    }
    return eval;
}

DesignEvaluation
Evaluator::evaluateOracle(const ValidationSet &validation) const
{
    OracleClassifier oracle(static_cast<float>(threshold));
    return evaluate(oracle, validation);
}

DesignEvaluation
Evaluator::evaluateRandom(const ValidationSet &validation,
                          double preciseFraction) const
{
    RandomFilterClassifier random(preciseFraction, options.seed);
    return evaluate(random, validation);
}

DesignEvaluation
Evaluator::evaluateFullApprox(const ValidationSet &validation) const
{
    // A classifier that never redirects: always approximate.
    class AlwaysAccel final : public Classifier
    {
      public:
        std::string kind() const override { return "full-approx"; }
        bool decidePrecise(const Vec &, std::size_t) override
        {
            return false;
        }
        sim::ClassifierCost cost() const override { return {}; }
        std::size_t configSizeBytes() const override { return 0; }
    };

    AlwaysAccel always;
    return evaluate(always, validation);
}

} // namespace mithra::core
