#include "core/runtime.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/scale.hh"
#include "stats/clopper_pearson.hh"
#include "stats/summary.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core
{

std::size_t
ValidationSet::totalInvocations() const
{
    std::size_t total = 0;
    for (const auto &entry : entries)
        total += entry.trace->count();
    return total;
}

ValidationSet
makeValidationSet(const CompiledWorkload &workload, std::size_t count)
{
    const auto &bench = *workload.benchmark;
    if (count == 0)
        count = numValidationDatasets();

    // Validation datasets are seeded per index, so generation, tracing
    // and accelerator attachment fill pre-sized slots in parallel.
    ValidationSet set;
    set.entries.resize(count);
    parallelFor(0, count, 1, [&](std::size_t d) {
        ValidationEntry &entry = set.entries[d];
        entry.dataset = bench.makeDataset(
            axbench::validationSeed(bench.name(), d));
        entry.trace = std::make_unique<axbench::InvocationTrace>(
            bench.trace(*entry.dataset));
        workload.attachApproximations(*entry.trace);
        entry.preciseFinal = bench.preciseOutput(*entry.dataset,
                                                 *entry.trace);
    });
    return set;
}

Evaluator::Evaluator(const CompiledWorkload &workloadIn,
                     const QualitySpec &specIn, double thresholdIn,
                     const EvaluationOptions &optionsIn)
    : workload(workloadIn), spec(specIn), threshold(thresholdIn),
      options(optionsIn),
      systemSim(sim::CoreModel{workloadIn.coreParams},
                workloadIn.systemParams)
{
}

namespace
{

/** "runtime.shard007.audits" — zero-padded so report rows sort. */
std::string
shardCounterName(std::size_t shard, const char *stat)
{
    std::string id = std::to_string(shard);
    while (id.size() < 3)
        id.insert(id.begin(), '0');
    return "runtime.shard" + id + "." + stat;
}

} // namespace

DesignEvaluation
Evaluator::evaluate(Classifier &classifier,
                    const ValidationSet &validation) const
{
    MITHRA_EXPECTS(!validation.entries.empty(), "empty validation set");
    const auto &bench = *workload.benchmark;

    DesignEvaluation eval;
    eval.kind = classifier.kind();
    eval.trials = validation.entries.size();

    const std::size_t shardCount =
        options.shards ? options.shards : defaultShardCount();
    eval.sharded.shardCount = shardCount;
    eval.sharded.shards.resize(shardCount);
    MITHRA_GAUGE_SET("runtime.shards",
                     static_cast<double>(shardCount));

    std::vector<double> losses;
    losses.reserve(eval.trials);

    // The watchdog treats the validation suite as one long deployment
    // stream split into shardCount substreams: each shard owns a
    // watchdog whose state and audit schedule persist across datasets.
    // The per-shard envelopes run at the split confidence (alpha / N)
    // so the merged envelope holds at the configured confidence.
    std::vector<watchdog::Watchdog> dogs;
    if (options.watchdog.enabled) {
        eval.sharded.shardConfidence = stats::splitConfidence(
            options.watchdog.confidence, shardCount);
        dogs.reserve(shardCount);
        for (std::size_t k = 0; k < shardCount; ++k) {
            watchdog::WatchdogOptions perShard = options.watchdog;
            perShard.confidence = eval.sharded.shardConfidence;
            perShard.seed = shardSeed(options.watchdog.seed, k);
            dogs.emplace_back(perShard, threshold);
        }
    }

    std::size_t accelTotal = 0;
    std::size_t invocationTotal = 0;
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;

    DecisionLoopOptions loop;
    loop.oracleThreshold = threshold;
    loop.onlineSampleRate = options.onlineSampleRate;
    loop.sampleSeed = options.seed ^ 0x0b5e7feULL;
    loop.blockSize = options.batchBlock;

    std::vector<std::uint8_t> decisions;
    std::vector<ShardTally> tallies;
    for (const auto &entry : validation.entries) {
        const auto &trace = *entry.trace;
        classifier.beginDataset(trace);

        decisions.assign(trace.count(), 0);
        const ShardPlan plan(trace.count(), shardCount);
        runShardedDecisions(classifier, trace, plan, dogs, loop,
                            decisions.data(), tallies);

        // Slot-ordered merge of the per-shard tallies: the fold order
        // is shard 0, 1, ... regardless of which worker finished
        // first, so the totals are independent of thread count.
        std::size_t numAccel = 0;
        std::size_t auditPreciseRuns = 0;
        std::size_t shadowAccelRuns = 0;
        for (std::size_t k = 0; k < shardCount; ++k) {
            const ShardTally &tally = tallies[k];
            numAccel += tally.accelerated;
            falsePositives += tally.falsePositives;
            falseNegatives += tally.falseNegatives;
            auditPreciseRuns += tally.auditPreciseRuns;
            shadowAccelRuns += tally.shadowAccelRuns;

            ShardReport &report = eval.sharded.shards[k];
            report.invocations += tally.invocations;
            report.accelerated += tally.accelerated;
            report.falsePositives += tally.falsePositives;
            report.falseNegatives += tally.falseNegatives;
        }

        // Deferred online observations (paper §IV-C.1): the schedule
        // picked the indices inside the sharded loop; the mutating
        // observe() calls run here, serially, in ascending stream
        // order — identical for any shard partition and thread count.
        if (options.onlineSampleRate > 0.0) {
            for (std::size_t k = 0; k < shardCount; ++k) {
                for (const std::size_t i : tallies[k].sampledIndices) {
                    classifier.observe(trace.inputVec(i),
                                       trace.maxAbsError(i));
                }
            }
        }

        accelTotal += numAccel;
        invocationTotal += trace.count();
        // The sampling schedule indexes the concatenated validation
        // stream, so the next dataset continues where this one ended.
        loop.streamOffset += trace.count();

        const auto recomposed = bench.recompose(*entry.dataset, trace,
                                                decisions);
        const double loss = bench.qualityLoss(entry.preciseFinal,
                                              recomposed);
        losses.push_back(loss);
        if (loss <= spec.maxQualityLossPct)
            ++eval.successes;

        // Cost accounting for this dataset. Audits are not free: an
        // audited accelerated invocation also runs the precise
        // function, and a DEGRADED shadow audit also runs the (gated)
        // accelerator. They are charged as overhead on top of run()
        // because they duplicate work without changing routing.
        auto totals = systemSim.run(
            workload.profile, classifier.cost(), numAccel,
            trace.count() - numAccel);
        totals += systemSim.auditOverhead(
            workload.profile, auditPreciseRuns, shadowAccelRuns);
        eval.totals += totals;
        eval.baselineTotals += systemSim.baseline(workload.profile);
    }

    MITHRA_COUNT("runtime.decisions", invocationTotal);
    MITHRA_COUNT("runtime.accel", accelTotal);

    eval.meanQualityLoss = stats::mean(losses);
    eval.p99QualityLoss = stats::percentile(losses, 99.0);
    eval.successLowerBound = stats::clopperPearsonLower(
        eval.successes, eval.trials, spec.confidence);
    eval.invocationRate = invocationTotal
        ? static_cast<double>(accelTotal)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.falsePositiveRate = invocationTotal
        ? static_cast<double>(falsePositives)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.falseNegativeRate = invocationTotal
        ? static_cast<double>(falseNegatives)
            / static_cast<double>(invocationTotal)
        : 0.0;
    eval.speedup = sim::speedup(eval.baselineTotals, eval.totals);
    eval.energyReduction = sim::energyReduction(eval.baselineTotals,
                                                eval.totals);
    eval.edpImprovement = sim::edpImprovement(eval.baselineTotals,
                                              eval.totals);
    if (!dogs.empty()) {
        eval.watchdogEnabled = true;
        mergeShardEvidence(dogs, options.watchdog.confidence,
                           eval.sharded);

        // The legacy snapshot becomes the slot-ordered sum of the
        // per-shard snapshots, with the worst state and the merged
        // envelope — so existing report surfaces keep working.
        watchdog::Snapshot combined;
        combined.state = eval.sharded.combinedState;
        combined.violationLowerBound =
            eval.sharded.violationEnvelope.lower;
        combined.violationUpperBound =
            eval.sharded.violationEnvelope.upper;
        for (std::size_t k = 0; k < shardCount; ++k) {
            const watchdog::Snapshot &snap =
                eval.sharded.shards[k].watchdog;
            combined.invocations += snap.invocations;
            combined.audits += snap.audits;
            combined.violations += snap.violations;
            combined.suspectEntries += snap.suspectEntries;
            combined.trips += snap.trips;
            combined.recoveries += snap.recoveries;
            combined.forcedPrecise += snap.forcedPrecise;
            combined.epochAudits += snap.epochAudits;
            combined.epochViolations += snap.epochViolations;
            if (snap.firstTripAt < combined.firstTripAt)
                combined.firstTripAt = snap.firstTripAt;

            MITHRA_COUNT_DYNAMIC(shardCounterName(k, "audits"),
                                 snap.audits);
            MITHRA_COUNT_DYNAMIC(shardCounterName(k, "violations"),
                                 snap.violations);
        }
        eval.watchdog = combined;
        MITHRA_GAUGE_SET("watchdog.final_state",
                         static_cast<double>(eval.watchdog.state));
    }
    return eval;
}

DesignEvaluation
Evaluator::evaluateOracle(const ValidationSet &validation) const
{
    OracleClassifier oracle(static_cast<float>(threshold));
    return evaluate(oracle, validation);
}

DesignEvaluation
Evaluator::evaluateRandom(const ValidationSet &validation,
                          double preciseFraction) const
{
    RandomFilterClassifier random(preciseFraction, options.seed);
    return evaluate(random, validation);
}

axbench::InvocationTrace
traceFromInputs(const CompiledWorkload &workload, const float *rows,
                std::size_t width, std::size_t count)
{
    const axbench::Benchmark &bench = *workload.benchmark;
    const npu::Topology topology = bench.npuTopology();
    MITHRA_EXPECTS(topology.size() >= 2,
                   "benchmark topology must have input and output "
                   "layers");
    const std::size_t inWidth = topology.front();
    const std::size_t outWidth = topology.back();
    MITHRA_EXPECTS(width == inWidth, "input width ", width,
                   " does not match the accelerator FIFO width ",
                   inWidth);
    // Rows are independent, so the precise outputs compute in
    // parallel into index-disjoint slots; the appends below stay
    // serial because the trace's flat storage is order-sensitive.
    std::vector<float> precise(count * outWidth);
    parallelFor(0, count, 256, [&](std::size_t i) {
        const Vec input(rows + i * width, rows + (i + 1) * width);
        const Vec out = bench.targetFunction(input);
        MITHRA_ASSERT(out.size() == outWidth,
                      "target function produced ", out.size(),
                      " outputs, topology promises ", outWidth);
        std::copy(out.begin(), out.end(),
                  precise.begin()
                      + static_cast<std::ptrdiff_t>(i * outWidth));
    });
    axbench::InvocationTrace trace(inWidth, outWidth);
    Vec input(width);
    Vec out(outWidth);
    for (std::size_t i = 0; i < count; ++i) {
        std::copy(rows + i * width, rows + (i + 1) * width,
                  input.begin());
        std::copy(precise.begin()
                      + static_cast<std::ptrdiff_t>(i * outWidth),
                  precise.begin()
                      + static_cast<std::ptrdiff_t>((i + 1) * outWidth),
                  out.begin());
        trace.append(input, out);
    }
    workload.attachApproximations(trace);
    return trace;
}

DesignEvaluation
Evaluator::evaluateFullApprox(const ValidationSet &validation) const
{
    // A classifier that never redirects: always approximate.
    class AlwaysAccel final : public Classifier
    {
      public:
        std::string kind() const override { return "full-approx"; }
        bool decidePrecise(const Vec &, std::size_t) override
        {
            return false;
        }
        void decideBatch(const float *, std::size_t, std::size_t count,
                         std::size_t, std::uint8_t *out) override
        {
            std::fill(out, out + count, std::uint8_t{0});
        }
        sim::ClassifierCost cost() const override { return {}; }
        std::size_t configSizeBytes() const override { return 0; }
    };

    AlwaysAccel always;
    return evaluate(always, validation);
}

} // namespace mithra::core
