/**
 * @file
 * The sharded, batch-first runtime decision loop.
 *
 * The evaluator used to walk each validation trace serially, one
 * decidePrecise() per invocation. This module replaces that walk with
 * a two-level structure:
 *
 *  - **Shards.** Each dataset's invocation stream is split into N
 *    deterministic contiguous shards (ShardPlan). Shard boundaries are
 *    a pure function of (trace length, shard count) — never of thread
 *    count — so the partition itself is part of the experiment
 *    configuration, not of the machine it ran on. Shards execute via
 *    parallelFor; MITHRA_THREADS only changes which worker runs which
 *    shard, never what any shard computes.
 *  - **Blocks.** Inside a shard, decisions are produced by
 *    Classifier::decideBatch() over fixed-size blocks, which lets
 *    table designs use their SIMD quantize/hash kernels instead of a
 *    per-row virtual call. A serial per-shard accounting pass then
 *    applies the watchdog, oracle false-decision counting and the
 *    online-sampling schedule in ascending index order.
 *
 * Determinism contract (see DESIGN.md §12):
 *
 *  - With the watchdog off, the evaluation is bitwise identical for
 *    ANY shard count and ANY thread count: decisions are a pure
 *    function of (input, index) between dataset boundaries (see the
 *    sharded-runtime contract in classifier.hh), per-shard tallies are
 *    integers folded in slot order, and online observations are
 *    deferred to the dataset boundary where they are applied serially
 *    in ascending stream order.
 *  - With the watchdog on, each shard owns a watchdog whose state
 *    machine consumes that shard's subsequence, so results are bitwise
 *    identical across thread counts at a FIXED shard count; changing
 *    MITHRA_SHARDS changes which invocations each watchdog sees and is
 *    a semantic configuration change (it joins the experiment cache
 *    key).
 *
 * Evidence merging: each shard's watchdog runs its sequential
 * envelope at confidence 1 - alpha/N (stats::splitConfidence). By the
 * union bound, the intersection of the N per-shard envelopes is a
 * valid envelope on the common violation rate at the original
 * confidence 1 - alpha — this is the statistical price of sharding,
 * and it is predictable (the tests bound the gap). The merge itself
 * is a slot-ordered reduction: integer counts sum shard 0, 1, ...,
 * the combined state is the worst per-shard state, and the envelope
 * is the intersection — all independent of thread interleaving.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/classifier.hh"
#include "core/watchdog/watchdog.hh"
#include "stats/sequential_bound.hh"

namespace mithra::core
{

/**
 * Deterministic contiguous partition of one dataset's invocation
 * stream: shard k covers [begin(k), end(k)), sizes differ by at most
 * one (the first total % shards shards take the extra invocation).
 */
struct ShardPlan
{
    std::size_t total = 0;
    std::size_t shards = 1;

    ShardPlan(std::size_t totalInvocations, std::size_t shardCount);

    /** First invocation index of shard k (begin(shards) == total). */
    std::size_t begin(std::size_t k) const;
    /** One past the last invocation index of shard k. */
    std::size_t end(std::size_t k) const { return begin(k + 1); }
    /** Invocations in shard k. */
    std::size_t size(std::size_t k) const { return end(k) - begin(k); }
};

/**
 * The shard count evaluation uses when EvaluationOptions::shards is 0:
 * the MITHRA_SHARDS environment variable (an integer in [1, 1024]),
 * falling back to the parallel substrate's thread count.
 */
std::size_t defaultShardCount();

/**
 * Per-shard audit-schedule seed: decorrelates the shards' watchdog
 * schedules while keeping each a pure function of (base seed, shard).
 */
std::uint64_t shardSeed(std::uint64_t baseSeed, std::size_t shard);

/** What one shard counted while deciding its index range. */
struct ShardTally
{
    std::size_t invocations = 0;
    /** Invocations finally routed to the accelerator. */
    std::size_t accelerated = 0;
    /** Precise decisions the oracle would have accelerated. */
    std::size_t falsePositives = 0;
    /** Accelerated decisions the oracle would have run precisely. */
    std::size_t falseNegatives = 0;
    /** Watchdog audits that re-ran the precise function. */
    std::size_t auditPreciseRuns = 0;
    /** DEGRADED shadow audits that ran the gated accelerator. */
    std::size_t shadowAccelRuns = 0;
    /**
     * Dataset positions picked by the online-sampling schedule, in
     * ascending order. The caller replays them through
     * Classifier::observe() at the dataset boundary — shard order then
     * ascending position reproduces the serial observation order.
     */
    std::vector<std::size_t> sampledIndices;
};

/** Knobs of one runShardedDecisions() pass over one dataset. */
struct DecisionLoopOptions
{
    /** Oracle threshold for false-decision accounting. */
    double oracleThreshold = 0.0;
    /** Fraction of invocations whose true error is sampled online. */
    double onlineSampleRate = 0.0;
    /** Seed of the counter-based online-sampling schedule. */
    std::uint64_t sampleSeed = 0;
    /**
     * Global stream position of this dataset's first invocation: the
     * sampling schedule is indexed by streamOffset + i so it is a pure
     * function of the whole validation stream, independent of how
     * datasets are partitioned into shards.
     */
    std::uint64_t streamOffset = 0;
    /** Invocations per decideBatch() block inside a shard. */
    std::size_t blockSize = 512;
};

/**
 * Decide one dataset's invocations, sharded and batch-first.
 *
 * @param classifier the design under evaluation; beginDataset() must
 *                   already have been called for this trace
 * @param trace      the dataset's invocation trace (with attached
 *                   accelerator outputs)
 * @param plan       the shard partition of [0, trace.count())
 * @param dogs       per-shard watchdogs — either empty (watchdog off)
 *                   or exactly plan.shards instances; dogs[k] consumes
 *                   shard k's subsequence in ascending order
 * @param options    loop knobs (see DecisionLoopOptions)
 * @param decisions  out: trace.count() entries, 1 = accelerate
 *                   (recompose()'s convention), 0 = precise
 * @param tallies    out: resized to plan.shards, slot k holds shard
 *                   k's counts
 */
void runShardedDecisions(Classifier &classifier,
                         const axbench::InvocationTrace &trace,
                         const ShardPlan &plan,
                         std::vector<watchdog::Watchdog> &dogs,
                         const DecisionLoopOptions &options,
                         std::uint8_t *decisions,
                         std::vector<ShardTally> &tallies);

/** One shard's totals over the whole validation suite. */
struct ShardReport
{
    std::size_t invocations = 0;
    std::size_t accelerated = 0;
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;
    /** Final watchdog snapshot; meaningful only when the parent
     *  ShardedEvaluation has watchdogEnabled set. */
    watchdog::Snapshot watchdog{};
};

/** The sharded engine's report surface for one evaluation. */
struct ShardedEvaluation
{
    /** Shards each dataset was split into. */
    std::size_t shardCount = 1;
    bool watchdogEnabled = false;
    /**
     * Envelope confidence each shard's watchdog ran at:
     * splitConfidence(confidence, shardCount), i.e. alpha / N per
     * shard so the merged envelope holds at the full confidence.
     */
    double shardConfidence = 0.0;
    /** Slot k = shard k, in shard order. */
    std::vector<ShardReport> shards;
    /** Worst per-shard watchdog state (severity Healthy < Recovered
     *  < Suspect < Degraded). */
    watchdog::State combinedState = watchdog::State::Healthy;
    /**
     * Intersection of the per-shard sequential envelopes on the
     * violation rate — valid at the full confidence by the union
     * bound (assuming the shards sample one common rate).
     */
    stats::ProportionEnvelope violationEnvelope{};
    /**
     * Diagnostic one-look Clopper–Pearson interval on the pooled
     * audit counts at the full confidence. NOT anytime-valid (it
     * ignores the sequential looks); reported to show how much the
     * alpha split plus anytime-validity cost relative to a single
     * fixed-sample analysis.
     */
    stats::ProportionEnvelope pooledEnvelope{};
};

/**
 * Merge per-shard watchdog evidence into `out`: per-shard snapshots
 * into out.shards[k].watchdog, the worst combined state, the envelope
 * intersection, and the pooled one-look interval. `confidence` is the
 * FULL (unsplit) confidence; out.shards must already have dogs.size()
 * slots. Deterministic: every reduction runs in shard-slot order.
 */
void mergeShardEvidence(const std::vector<watchdog::Watchdog> &dogs,
                        double confidence, ShardedEvaluation &out);

} // namespace mithra::core
