#include "core/neural_classifier.hh"

#include <algorithm>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "npu/trainer.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core
{

namespace
{

/** Balanced, capped (input, one-hot target) sample for training. */
struct PreparedSamples
{
    VecBatch trainInputs, trainTargets;
    VecBatch holdoutInputs;
    std::vector<std::uint8_t> holdoutLabels;
};

PreparedSamples
prepareSamples(const TrainingData &data,
               const NeuralClassifierOptions &options)
{
    Rng rng(options.trainer.seed ^ 0x6e657572616cULL);
    const std::size_t n = data.rawInputs.size();
    const auto order = rng.permutation(n);

    // Split off the holdout set first.
    const auto holdoutCount = static_cast<std::size_t>(
        options.holdoutFraction * static_cast<double>(n));

    // Indices per class from the remaining pool.
    std::vector<std::size_t> preciseIdx, accelIdx;
    PreparedSamples out;
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = order[k];
        if (k < holdoutCount) {
            out.holdoutInputs.push_back(data.rawInputs[i]);
            out.holdoutLabels.push_back(data.labels[i]);
        } else if (data.labels[i]) {
            preciseIdx.push_back(i);
        } else {
            accelIdx.push_back(i);
        }
    }

    // Class balancing: precise inputs are rare (that is the whole
    // premise), so replicate them up to parity — or beyond it by the
    // conservativeness knob — capped overall.
    const std::size_t perClass = std::min(
        options.maxTrainSamples / 2,
        std::max(preciseIdx.size(), accelIdx.size()));
    const auto preciseCount = static_cast<std::size_t>(
        static_cast<double>(perClass)
        * std::max(1.0, options.preciseOversample));

    auto emit = [&](const std::vector<std::size_t> &pool, bool precise,
                    std::size_t count) {
        if (pool.empty())
            return;
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t i = pool[k % pool.size()];
            out.trainInputs.push_back(data.rawInputs[i]);
            out.trainTargets.push_back(precise ? Vec{0.9f, 0.1f}
                                               : Vec{0.1f, 0.9f});
        }
    };
    emit(preciseIdx, true, preciseCount);
    emit(accelIdx, false, perClass);

    // Shuffle so any prefix (the topology-selection subsample) mixes
    // both classes.
    const auto shuffled = rng.permutation(out.trainInputs.size());
    VecBatch inputs(out.trainInputs.size());
    VecBatch targets(out.trainTargets.size());
    for (std::size_t k = 0; k < shuffled.size(); ++k) {
        inputs[k] = std::move(out.trainInputs[shuffled[k]]);
        targets[k] = std::move(out.trainTargets[shuffled[k]]);
    }
    out.trainInputs.swap(inputs);
    out.trainTargets.swap(targets);
    return out;
}

double
holdoutAccuracy(const npu::Mlp &net, const npu::LinearScaler &scaler,
                const VecBatch &inputs,
                const std::vector<std::uint8_t> &labels)
{
    if (inputs.empty())
        return 0.0;
    // One scratch and unit buffer for the whole scan: the candidate
    // selection loop calls this once per topology, so the per-forward
    // allocations of Mlp::forward()/toUnit() would dominate.
    npu::ForwardScratch scratch;
    scratch.prepare(net.topology());
    Vec unit(scaler.width());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        scaler.toUnitInto(inputs[i], unit.data());
        npu::forwardTrace(net, unit, scratch);
        const auto out = scratch.output();
        const bool precise = out[0] > out[1];
        if (precise == (labels[i] != 0))
            ++correct;
    }
    return static_cast<double>(correct)
        / static_cast<double>(inputs.size());
}

} // namespace

NeuralClassifier::NeuralClassifier(npu::LinearScaler scaler, npu::Mlp netIn,
                                   double accuracyIn,
                                   const npu::NpuParams &params)
    : inputScaler(std::move(scaler)), net(std::move(netIn)),
      accuracy(accuracyIn), costModel(params)
{
}

NeuralClassifier
NeuralClassifier::train(const TrainingData &data,
                        const NeuralClassifierOptions &options)
{
    MITHRA_EXPECTS(!data.rawInputs.empty(), "no training samples");
    MITHRA_EXPECTS(!options.hiddenSizes.empty(), "no candidate topologies");

    npu::LinearScaler scaler;
    scaler.fit(data.rawInputs);

    const PreparedSamples samples = prepareSamples(data, options);
    MITHRA_ASSERT(!samples.trainInputs.empty(),
                  "sample preparation produced no training data");

    VecBatch unitInputs;
    unitInputs.reserve(samples.trainInputs.size());
    for (const auto &input : samples.trainInputs)
        unitInputs.push_back(scaler.toUnit(input));

    const std::size_t inputWidth = data.rawInputs.front().size();

    // Topology selection (paper §IV-B): train every candidate on a
    // subsample for a few epochs and keep the most accurate, with a
    // small slack inside which fewer neurons win. The winner is then
    // trained with the full budget.
    std::size_t chosenHidden = options.forcedHidden;
    if (chosenHidden == 0) {
        const std::size_t subset = std::min(options.selectionSamples,
                                            unitInputs.size());
        const VecBatch selInputs(unitInputs.begin(),
                                 unitInputs.begin()
                                     + static_cast<std::ptrdiff_t>(
                                         subset));
        const VecBatch selTargets(samples.trainTargets.begin(),
                                  samples.trainTargets.begin()
                                      + static_cast<std::ptrdiff_t>(
                                          subset));
        // Each candidate topology trains independently (seeded by its
        // hidden size); the selection scan below stays serial and in
        // smallest-first order so the slack rule picks the same winner
        // at any thread count.
        std::vector<double> candidateAccuracy(options.hiddenSizes.size(),
                                              -1.0);
        parallelFor(0, options.hiddenSizes.size(), 1, [&](std::size_t c) {
            const std::size_t hidden = options.hiddenSizes[c];
            npu::Mlp candidate({inputWidth, hidden, 2});
            npu::initWeights(candidate, options.trainer.seed + hidden);
            npu::TrainerOptions trainerOptions = options.trainer;
            trainerOptions.epochs = options.selectionEpochs;
            trainerOptions.seed += hidden;
            npu::train(candidate, selInputs, selTargets, trainerOptions);

            candidateAccuracy[c] = holdoutAccuracy(
                candidate, scaler, samples.holdoutInputs,
                samples.holdoutLabels);
        });

        double bestAccuracy = -1.0;
        for (std::size_t c = 0; c < options.hiddenSizes.size(); ++c) {
            // Candidates are visited smallest first, so strictly
            // better accuracy (beyond the slack) justifies growth.
            if (candidateAccuracy[c] > bestAccuracy + options.accuracySlack
                || chosenHidden == 0) {
                chosenHidden = options.hiddenSizes[c];
                bestAccuracy = candidateAccuracy[c];
            }
        }
    }

    // Full training run for the selected topology.
    npu::Mlp best({inputWidth, chosenHidden, 2});
    npu::initWeights(best, options.trainer.seed + chosenHidden);
    npu::TrainerOptions trainerOptions = options.trainer;
    trainerOptions.seed += chosenHidden;
    npu::train(best, unitInputs, samples.trainTargets, trainerOptions);
    const double accuracy = holdoutAccuracy(best, scaler,
                                            samples.holdoutInputs,
                                            samples.holdoutLabels);

    return NeuralClassifier(std::move(scaler), std::move(best), accuracy,
                            options.npuParams);
}

bool
NeuralClassifier::decidePrecise(const Vec &input, std::size_t)
{
    std::uint8_t decision = 0;
    decideBatch(input.data(), input.size(), 1, 0, &decision);
    return decision != 0;
}

void
NeuralClassifier::decideBatch(const float *inputs, std::size_t width,
                              std::size_t count, std::size_t,
                              std::uint8_t *out)
{
    MITHRA_EXPECTS(width == inputScaler.width(), "input width ", width,
                   " != scaler width ", inputScaler.width());
    // thread_local: calibration measures held-out datasets in parallel
    // with one shared classifier instance.
    thread_local Vec unit;
    thread_local npu::ForwardScratch scratch;
    unit.resize(width);
    scratch.prepare(net.topology());
    for (std::size_t i = 0; i < count; ++i) {
        inputScaler.toUnitInto({inputs + i * width, width}, unit.data());
        npu::forwardTrace(net, unit, scratch);
        const auto activation = scratch.output();
        out[i] = activation[0] > activation[1] ? 1 : 0;
    }
    MITHRA_COUNT("npu.eval.macs", count * net.macsPerForward());
}

sim::ClassifierCost
NeuralClassifier::cost() const
{
    const auto npuCost = costModel.invocationCost(net);
    sim::ClassifierCost cost;
    // The classifier shares the NPU with the accelerator: its forward
    // pass serializes ahead of either outcome.
    cost.extraCyclesAccel = static_cast<double>(npuCost.cycles);
    cost.extraCyclesPrecise = static_cast<double>(npuCost.cycles);
    cost.energyPjPerInvocation = npuCost.picoJoules;
    cost.sizeBytes = static_cast<double>(net.sizeBytes());
    return cost;
}

std::size_t
NeuralClassifier::configSizeBytes() const
{
    // Weights plus the input scaling ranges.
    return net.sizeBytes() + inputScaler.width() * 8;
}

} // namespace mithra::core
