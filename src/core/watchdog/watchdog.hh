/**
 * @file
 * The runtime guarantee watchdog (graceful degradation layer).
 *
 * MITHRA's contract — quality loss <= q on at least a fraction S of
 * datasets, with confidence beta — is certified *offline*, on
 * representative compile datasets. Nothing in the deployed system
 * re-checks it: if the serving input distribution drifts away from
 * the compile-time distribution, or the accelerator itself decays
 * (bit flips in NPU weights, corrupted decision tables), the
 * certificate silently stops describing reality. The watchdog closes
 * that loop at runtime:
 *
 *  - **Audit sampling.** A deterministic pseudo-random subsample of
 *    accelerated invocations also runs the precise function (exactly
 *    like the paper's sporadic online observation, §IV-C.1) and
 *    compares the two. An audited invocation *violates* when the
 *    accelerator's local error exceeds the compile-time threshold —
 *    the event the classifier was trained to prevent.
 *  - **Sequential statistics.** Violations feed a
 *    stats::SequentialBinomialBound, an anytime-valid Clopper–Pearson
 *    envelope on the true violation rate. Because the envelope is
 *    valid at every audit simultaneously, the watchdog can act on it
 *    continuously without the repeated-peeking fallacy.
 *  - **Graceful degradation.** A four-state machine gates the
 *    accelerator:
 *
 *        HEALTHY --(observed rate > allowed)--> SUSPECT
 *        SUSPECT --(lower bound > allowed)----> DEGRADED
 *        SUSPECT --(upper bound <= allowed)---> HEALTHY
 *        DEGRADED --(shadow audits certify)---> RECOVERED
 *        RECOVERED --(probation clean)--------> HEALTHY
 *        RECOVERED --(lower bound > allowed)--> DEGRADED
 *
 *    SUSPECT ramps the audit rate (cheap: more double-runs). DEGRADED
 *    forces every invocation down the precise path — the system loses
 *    speedup, never quality — while *shadow* audits keep running the
 *    accelerator on a sample of the stream to detect recovery.
 *
 * Determinism: the audit schedule is a pure function of
 * (seed, invocation index, state audit rate) through SplitMix64, and
 * the state machine advances only on audited invocations of the
 * serial runtime loop — so enabling the watchdog preserves the
 * repository-wide bitwise-reproducibility guarantee at any
 * MITHRA_THREADS (see DESIGN.md §11).
 */

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/classifier.hh"
#include "stats/sequential_bound.hh"

namespace mithra::axbench
{
class InvocationTrace;
}

namespace mithra::core::watchdog
{

/** The watchdog's view of the deployment. */
enum class State
{
    /** Bound certifies the contract; audit at the base rate. */
    Healthy,
    /** Point estimate above the allowed rate; audits ramped up. */
    Suspect,
    /** Confident violation: approximation forced off (fail closed). */
    Degraded,
    /** Shadow audits look clean again; approximation re-enabled on
     *  probation at the elevated audit rate. */
    Recovered,
};

/** "healthy", "suspect", "degraded", "recovered". */
const char *stateName(State state);

/** Sentinel for "no trip happened". */
inline constexpr std::size_t noTrip =
    std::numeric_limits<std::size_t>::max();

/** Runtime knobs; defaults follow DESIGN.md §11. */
struct WatchdogOptions
{
    /** Master switch (default off: bit-for-bit legacy behaviour). */
    bool enabled = false;
    /** Fraction of accelerated invocations audited while HEALTHY. */
    double baseAuditRate = 0.02;
    /** Audit fraction while SUSPECT or RECOVERED (the ramp). */
    double suspectAuditRate = 0.2;
    /** Fraction of would-accelerate invocations shadow-audited while
     *  DEGRADED (runs the idle accelerator alongside the precise
     *  path to detect recovery). */
    double degradedAuditRate = 0.1;
    /** Allowed violation rate among accelerated invocations. The
     *  compile-time calibration drives the classifier's conditional
     *  false-negative rate well below this; the margin is what the
     *  watchdog patrols. */
    double maxViolationRate = 0.1;
    /** Confidence of the sequential envelope per monitoring epoch. */
    double confidence = 0.95;
    /** Audits before a point estimate alone may raise SUSPECT. */
    std::size_t suspectMinAudits = 8;
    /** HEALTHY's screen watches the violation rate over the most
     *  recent suspectWindowAudits audits rather than the whole epoch:
     *  a long clean history must not dilute a fresh regime change.
     *  Must be >= suspectMinAudits. */
    std::size_t suspectWindowAudits = 32;
    /** Shadow audits required before DEGRADED may lift. */
    std::size_t recoveryMinAudits = 48;
    /** RECOVERED must certify health below
     *  recoverMargin * maxViolationRate to re-enter HEALTHY —
     *  the hysteresis that prevents flapping. */
    double recoverMargin = 0.5;
    /** Clean audits required to leave RECOVERED. */
    std::size_t probationMinAudits = 32;
    /** Audit-schedule seed (shared SplitMix64 stream family). */
    std::uint64_t seed = 0xd09ULL;

    /**
     * Defaults overridden by the MITHRA_WATCHDOG* environment knobs
     * (see the README's environment-variable reference):
     * MITHRA_WATCHDOG=1 enables, MITHRA_WATCHDOG_RATE sets
     * baseAuditRate, MITHRA_WATCHDOG_MAX_VIOLATION sets
     * maxViolationRate, MITHRA_WATCHDOG_CONFIDENCE sets confidence,
     * MITHRA_WATCHDOG_SEED sets the schedule seed.
     */
    static WatchdogOptions fromEnv();
};

/** What the runtime must do for one invocation (see Watchdog::route). */
struct Routing
{
    /** Final decision: invoke the accelerator for the real output. */
    bool useAccel = false;
    /** Also run the precise function and report the true error. */
    bool auditPrecise = false;
    /** DEGRADED shadow audit: also run the (gated) accelerator and
     *  report the true error. */
    bool auditShadowAccel = false;

    /** True when either kind of audit was scheduled. */
    bool audited() const { return auditPrecise || auditShadowAccel; }
};

/** Everything a harness wants to know after (or during) a run. */
struct Snapshot
{
    State state = State::Healthy;
    std::size_t invocations = 0;
    /** Audits across all epochs (both kinds). */
    std::size_t audits = 0;
    std::size_t violations = 0;
    /** Entries into SUSPECT. */
    std::size_t suspectEntries = 0;
    /** Entries into DEGRADED. */
    std::size_t trips = 0;
    /** Entries into RECOVERED. */
    std::size_t recoveries = 0;
    /** Invocations the state machine forced down the precise path. */
    std::size_t forcedPrecise = 0;
    /** Invocation index of the first trip (noTrip when none). */
    std::size_t firstTripAt = noTrip;
    /** Current epoch's anytime-valid envelope. */
    double violationUpperBound = 1.0;
    double violationLowerBound = 0.0;
    /** Audits and violations inside the current epoch. */
    std::size_t epochAudits = 0;
    std::size_t epochViolations = 0;
};

/**
 * The per-benchmark watchdog instance. Drive it with route() once per
 * invocation (in stream order) and reportAudit() whenever route()
 * scheduled an audit. Not thread-safe by design: the runtime decision
 * loop is serial (see DESIGN.md §11 on why this preserves the bitwise
 * guarantee).
 */
class Watchdog
{
  public:
    /**
     * @param options        runtime knobs (enabled is ignored here —
     *                       constructing a Watchdog means using it)
     * @param errorThreshold the compile-time local-error threshold; an
     *                       audited error above it is a violation
     */
    Watchdog(const WatchdogOptions &options, double errorThreshold);

    /**
     * The deterministic audit schedule: a pure function of
     * (seed, invocation index, rate). For a fixed seed and index the
     * schedule is monotone in the rate, so ramping the rate only adds
     * audits — it never unschedules one.
     */
    static bool auditScheduled(std::uint64_t seed, std::uint64_t index,
                               double rate);

    /**
     * Route one invocation. `wantAccel` is the classifier's decision
     * (true = accelerate); the watchdog may overrule it (DEGRADED
     * forces the precise path) and may schedule an audit. When the
     * returned Routing has audited() set, the caller must run the
     * second path and call reportAudit() with the measured local
     * error before the next route() call.
     */
    Routing route(bool wantAccel);

    /** Report the audited invocation's true local error. */
    void reportAudit(float trueError);

    State state() const { return currentState; }

    /** True while the accelerator is administratively disabled. */
    bool degraded() const { return currentState == State::Degraded; }

    /** The current epoch's sequential envelope. */
    const stats::SequentialBinomialBound &bound() const
    {
        return violationBound;
    }

    double errorThreshold() const { return threshold; }

    Snapshot snapshot() const;

  private:
    void enter(State next);
    double auditRate() const;
    void recordRecent(bool violated);

    WatchdogOptions opts;
    double threshold;
    State currentState = State::Healthy;
    stats::SequentialBinomialBound violationBound;
    bool auditPending = false;
    bool pendingWantAccel = false;

    /** Sliding window over the epoch's most recent audit outcomes
     *  (HEALTHY's change screen; cleared on every transition). */
    std::vector<bool> recentAudits;
    std::size_t recentHead = 0;
    std::size_t recentViolations = 0;

    std::size_t numInvocations = 0;
    std::size_t numAudits = 0;
    std::size_t numViolations = 0;
    std::size_t numSuspectEntries = 0;
    std::size_t numTrips = 0;
    std::size_t numRecoveries = 0;
    std::size_t numForcedPrecise = 0;
    std::size_t firstTrip = noTrip;
};

/** Summary of one stream segment driven through runStream(). */
struct StreamResult
{
    Snapshot snapshot;
    /** Invocations fed from this segment. */
    std::size_t invocations = 0;
    /** Index *within this segment* of the first trip (noTrip: none). */
    std::size_t tripIndex = noTrip;
};

/**
 * Drive a watchdog over one cached invocation stream: per invocation
 * ask the classifier, route through the watchdog, and serve scheduled
 * audits from the trace's cached true errors (the trace holds both
 * the precise and the approximate outputs, so "running both paths" is
 * a lookup here — the cost model, not this helper, charges for it).
 * Used by the drift harness, fig12 and the tests.
 */
StreamResult runStream(Watchdog &dog, Classifier &classifier,
                       const axbench::InvocationTrace &trace);

} // namespace mithra::core::watchdog
