#include "core/watchdog/watchdog.hh"

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core::watchdog
{

const char *
stateName(State state)
{
    switch (state) {
      case State::Healthy:
        return "healthy";
      case State::Suspect:
        return "suspect";
      case State::Degraded:
        return "degraded";
      case State::Recovered:
        return "recovered";
    }
    MITHRA_ASSERT(false, "unreachable watchdog state");
    return "?";
}

WatchdogOptions
WatchdogOptions::fromEnv()
{
    WatchdogOptions options;

    options.enabled = env::flag("MITHRA_WATCHDOG", options.enabled);
    options.baseAuditRate = env::realIn("MITHRA_WATCHDOG_RATE", 0.0,
                                        1.0, options.baseAuditRate);
    options.maxViolationRate =
        env::realIn("MITHRA_WATCHDOG_MAX_VIOLATION", 0.0, 1.0,
                    options.maxViolationRate);
    options.confidence = env::realIn("MITHRA_WATCHDOG_CONFIDENCE", 0.0,
                                     1.0, options.confidence);
    options.seed = env::seed("MITHRA_WATCHDOG_SEED", options.seed);

    return options;
}

namespace
{

stats::SequentialBoundOptions
boundOptions(const WatchdogOptions &opts)
{
    stats::SequentialBoundOptions bound;
    bound.confidence = opts.confidence;
    return bound;
}

} // namespace

Watchdog::Watchdog(const WatchdogOptions &options, double errorThreshold)
    : opts(options), threshold(errorThreshold),
      violationBound(boundOptions(options))
{
    MITHRA_EXPECTS(threshold >= 0.0,
                   "error threshold must be non-negative, got ",
                   threshold);
    MITHRA_EXPECTS(opts.maxViolationRate > 0.0
                       && opts.maxViolationRate < 1.0,
                   "maxViolationRate must be in (0, 1), got ",
                   opts.maxViolationRate);
    MITHRA_EXPECTS(opts.recoverMargin > 0.0 && opts.recoverMargin <= 1.0,
                   "recoverMargin must be in (0, 1], got ",
                   opts.recoverMargin);
    MITHRA_EXPECTS(opts.baseAuditRate > 0.0,
                   "a watchdog without audits cannot watch anything");
    MITHRA_EXPECTS(opts.suspectWindowAudits >= opts.suspectMinAudits,
                   "the suspicion window (", opts.suspectWindowAudits,
                   ") cannot be smaller than suspectMinAudits (",
                   opts.suspectMinAudits, ")");
}

void
Watchdog::recordRecent(bool violated)
{
    if (recentAudits.size() < opts.suspectWindowAudits) {
        recentAudits.push_back(violated);
    } else {
        recentViolations -= recentAudits[recentHead] ? 1 : 0;
        recentAudits[recentHead] = violated;
        recentHead = (recentHead + 1) % recentAudits.size();
    }
    recentViolations += violated ? 1 : 0;
}

bool
Watchdog::auditScheduled(std::uint64_t seed, std::uint64_t index,
                         double rate)
{
    // The counter-based draw depends only on (seed, index), never on
    // call order or thread count, and its event set is monotone in the
    // rate — a higher rate's audit set is a superset of a lower one's.
    return indexedBernoulli(seed, index, rate);
}

double
Watchdog::auditRate() const
{
    switch (currentState) {
      case State::Healthy:
        return opts.baseAuditRate;
      case State::Suspect:
      case State::Recovered:
        return opts.suspectAuditRate;
      case State::Degraded:
        return opts.degradedAuditRate;
    }
    MITHRA_ASSERT(false, "unreachable watchdog state");
    return opts.baseAuditRate;
}

Routing
Watchdog::route(bool wantAccel)
{
    MITHRA_EXPECTS(!auditPending,
                   "route() called with an audit still unreported");

    const std::uint64_t index = numInvocations++;
    Routing routing;

    if (!wantAccel) {
        // The classifier already chose the precise path; there is no
        // approximation to audit and nothing for the watchdog to gate.
        return routing;
    }

    const bool scheduled = auditScheduled(opts.seed, index, auditRate());

    if (currentState == State::Degraded) {
        // Fail closed: precise path for the real output. A scheduled
        // audit becomes a shadow run of the gated accelerator so the
        // recovery bound keeps accumulating evidence.
        ++numForcedPrecise;
        MITHRA_COUNT("watchdog.forced_precise", 1);
        routing.useAccel = false;
        routing.auditShadowAccel = scheduled;
    } else {
        routing.useAccel = true;
        routing.auditPrecise = scheduled;
    }

    if (scheduled) {
        auditPending = true;
        pendingWantAccel = wantAccel;
    }
    return routing;
}

void
Watchdog::reportAudit(float trueError)
{
    MITHRA_EXPECTS(auditPending,
                   "reportAudit() without a scheduled audit");
    auditPending = false;

    const bool violated = static_cast<double>(trueError) > threshold;
    ++numAudits;
    if (violated)
        ++numViolations;
    MITHRA_COUNT("watchdog.audits", 1);
    if (violated)
        MITHRA_COUNT("watchdog.violations", 1);

    violationBound.record(violated);
    recordRecent(violated);
    MITHRA_GAUGE_SET("watchdog.violation_upper_bound",
                     violationBound.upperBound());

    const double allowed = opts.maxViolationRate;
    const std::size_t n = violationBound.observations();

    switch (currentState) {
      case State::Healthy: {
        // The screen is a windowed point estimate: noisy, so it only
        // raises suspicion — and only once enough audits accumulated
        // that a single unlucky violation cannot trip the ramp from
        // rate ~0. Windowed rather than epoch-cumulative because a
        // long clean history would otherwise dilute a fresh regime
        // change and delay the ramp far beyond the look schedule.
        const std::size_t window = recentAudits.size();
        const double windowRate = window == 0
            ? 0.0
            : static_cast<double>(recentViolations)
                / static_cast<double>(window);
        if (window >= opts.suspectMinAudits && windowRate > allowed)
            enter(State::Suspect);
        break;
      }

      case State::Suspect:
        if (violationBound.lowerBound() > allowed) {
            // Even the optimistic end of the envelope violates the
            // contract: degrade with confidence >= opts.confidence.
            enter(State::Degraded);
        } else if (violationBound.upperBound() <= allowed) {
            // The envelope certifies the contract: false alarm.
            enter(State::Healthy);
        }
        break;

      case State::Degraded:
        // Shadow audits only: wait for a certified-clean stretch.
        if (n >= opts.recoveryMinAudits
            && violationBound.upperBound() < opts.recoverMargin * allowed)
            enter(State::Recovered);
        break;

      case State::Recovered:
        if (violationBound.lowerBound() > allowed) {
            enter(State::Degraded);
        } else if (n >= opts.probationMinAudits
                   && violationBound.upperBound()
                       < opts.recoverMargin * allowed) {
            enter(State::Healthy);
        }
        break;
    }
}

void
Watchdog::enter(State next)
{
    MITHRA_ASSERT(next != currentState,
                  "state transition to the current state");
    currentState = next;

    // Each state change opens a fresh monitoring epoch: the old
    // envelope described the old regime (and the old audit rate), so
    // its evidence must not leak across the transition. The per-epoch
    // confidence budget restarts with it — false-trip probability is
    // bounded per epoch, not over the process lifetime.
    violationBound.reset();
    recentAudits.clear();
    recentHead = 0;
    recentViolations = 0;

    switch (next) {
      case State::Healthy:
        break;
      case State::Suspect:
        ++numSuspectEntries;
        MITHRA_COUNT("watchdog.suspects", 1);
        break;
      case State::Degraded:
        ++numTrips;
        if (firstTrip == noTrip)
            firstTrip = numInvocations == 0 ? 0 : numInvocations - 1;
        MITHRA_COUNT("watchdog.trips", 1);
        break;
      case State::Recovered:
        ++numRecoveries;
        MITHRA_COUNT("watchdog.recoveries", 1);
        break;
    }
}

Snapshot
Watchdog::snapshot() const
{
    Snapshot snap;
    snap.state = currentState;
    snap.invocations = numInvocations;
    snap.audits = numAudits;
    snap.violations = numViolations;
    snap.suspectEntries = numSuspectEntries;
    snap.trips = numTrips;
    snap.recoveries = numRecoveries;
    snap.forcedPrecise = numForcedPrecise;
    snap.firstTripAt = firstTrip;
    snap.violationUpperBound = violationBound.upperBound();
    snap.violationLowerBound = violationBound.lowerBound();
    snap.epochAudits = violationBound.observations();
    snap.epochViolations = violationBound.successes();
    return snap;
}

StreamResult
runStream(Watchdog &dog, Classifier &classifier,
          const axbench::InvocationTrace &trace)
{
    MITHRA_SPAN("core.watchdog.stream");
    MITHRA_EXPECTS(trace.hasApproximations(),
                   "watchdog streams need approximate outputs attached");

    const std::size_t tripsBefore = dog.snapshot().trips;
    StreamResult result;
    result.invocations = trace.count();

    classifier.beginDataset(trace);
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const bool wantPrecise =
            classifier.decidePrecise(trace.inputVec(i), i);
        const Routing routing = dog.route(!wantPrecise);
        if (routing.audited())
            dog.reportAudit(trace.maxAbsError(i));
        if (result.tripIndex == noTrip
            && dog.snapshot().trips > tripsBefore)
            result.tripIndex = i;
    }

    result.snapshot = dog.snapshot();
    return result;
}

} // namespace mithra::core::watchdog
