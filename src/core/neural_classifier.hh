/**
 * @file
 * The neural MITHRA classifier (paper §IV-B).
 *
 * A three-layer MLP with two output neurons (one-hot: neuron 0 fires
 * for "precise") executed on the NPU hardware itself. The compiler
 * trains the five candidate topologies (2, 4, 8, 16 or 32 hidden
 * neurons) offline and deploys the one with the highest accuracy and
 * the fewest neurons. Because the classifier shares the NPU, its
 * forward pass serializes with the accelerator invocation and its
 * cycles/energy are charged on every call.
 */

#pragma once

#include "core/classifier.hh"
#include "core/training_data.hh"
#include "npu/approximator.hh"
#include "npu/cost_model.hh"

namespace mithra::core
{

/** Compile-time options for the neural design. */
struct NeuralClassifierOptions
{
    /** Candidate hidden-layer widths (paper: 2, 4, 8, 16, 32). */
    std::vector<std::size_t> hiddenSizes = {2, 4, 8, 16, 32};
    /** Skip topology selection and use this hidden width (0 = select). */
    std::size_t forcedHidden = 0;
    /** Cap on training samples (training cost control). */
    std::size_t maxTrainSamples = 30000;
    /** Cheaper selection phase: candidates train on a subsample... */
    std::size_t selectionSamples = 8000;
    /** ...for fewer epochs; only the winner gets the full budget. */
    std::size_t selectionEpochs = 20;
    /** Fraction of samples held out for topology selection. */
    double holdoutFraction = 0.15;
    /** Accuracy slack within which a smaller network wins. */
    double accuracySlack = 0.005;
    /**
     * Oversampling of the precise class beyond parity. Raising this
     * biases mistakes toward false positives (quality-safe); the
     * closed-loop calibration ramps it when the label threshold alone
     * cannot certify the contract (bimodal error distributions).
     */
    double preciseOversample = 1.0;
    /** Classifier training is cheaper than NPU mimic training. */
    npu::TrainerOptions trainer{.epochs = 60,
                                .learningRate = 0.3f,
                                .momentum = 0.9f,
                                .batchSize = 32,
                                .seed = 0xc1a55,
                                .targetMse = 0.0,
                                .lrDecay = 0.99f};
    /** NPU parameters used to cost the classifier's forward pass. */
    npu::NpuParams npuParams{};
};

/** The deployable neural classifier. */
class NeuralClassifier final : public Classifier
{
  public:
    /** Train all candidate topologies and keep the best (see above). */
    static NeuralClassifier train(const TrainingData &data,
                                  const NeuralClassifierOptions &options);

    std::string kind() const override { return "neural"; }
    bool decidePrecise(const Vec &input,
                       std::size_t invocationIndex) override;
    void decideBatch(const float *inputs, std::size_t width,
                     std::size_t count, std::size_t beginIndex,
                     std::uint8_t *out) override;
    sim::ClassifierCost cost() const override;
    std::size_t configSizeBytes() const override;

    /** The selected topology, e.g. {18, 16, 2}. */
    const npu::Topology &topology() const { return net.topology(); }
    /** Holdout accuracy of the selected network. */
    double selectionAccuracy() const { return accuracy; }

  private:
    NeuralClassifier(npu::LinearScaler scaler, npu::Mlp net,
                     double accuracy, const npu::NpuParams &params);

    npu::LinearScaler inputScaler;
    npu::Mlp net;
    double accuracy;
    npu::NpuCostModel costModel;
};

} // namespace mithra::core

