#include "core/report.hh"

#include <cstdio>

#include "common/contracts.hh"

namespace mithra::core
{

TablePrinter::TablePrinter(std::vector<std::string> headersIn)
    : headers(std::move(headersIn))
{
    MITHRA_EXPECTS(!headers.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    MITHRA_ASSERT(cells.size() == headers.size(),
                  "row width ", cells.size(), " != header width ",
                  headers.size());
    rows.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::printf("%-*s", static_cast<int>(widths[c]) + 2,
                        cells[c].c_str());
        }
        std::printf("\n");
    };

    printRow(headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        printRow(row);
}

void
printBanner(const std::string &title)
{
    std::printf("\n== %s ==\n\n", title.c_str());
}

} // namespace mithra::core
