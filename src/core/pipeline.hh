/**
 * @file
 * The MITHRA compile pipeline (paper Figure 2, left half).
 *
 * For one benchmark the pipeline:
 *   1. generates the representative compile datasets,
 *   2. trains the NPU (the approximate accelerator's MLP) to mimic
 *      the safe-to-approximate function,
 *   3. collects invocation traces and attaches the accelerator's
 *      outputs,
 *   4. profiles cycle/energy costs into a sim::RegionProfile,
 * producing a CompiledWorkload that the threshold optimizer and the
 * classifier trainers consume.
 */

#pragma once

#include <memory>
#include <string>

#include "axbench/benchmark.hh"
#include "core/neural_classifier.hh"
#include "core/table_classifier.hh"
#include "core/threshold_optimizer.hh"
#include "core/training_data.hh"
#include "npu/approximator.hh"
#include "npu/cost_model.hh"
#include "sim/system_sim.hh"

namespace mithra::core
{

/** Everything the compiler derived for one benchmark. */
struct CompiledWorkload
{
    std::unique_ptr<axbench::Benchmark> benchmark;
    /** The trained approximate accelerator (host NPU path). */
    npu::Approximator accel;
    /**
     * Non-null when the benchmark brings its own accelerator (plugin
     * backends, `axbench::Benchmark::makeAccelerator()`); it then
     * replaces the NPU for training, invocation, and cost modeling.
     */
    std::unique_ptr<axbench::Accelerator> backend;

    /** Attach whichever accelerator this workload trained. */
    void attachApproximations(axbench::InvocationTrace &trace) const
    {
        if (backend)
            trace.attachApproximations(*backend);
        else
            trace.attachApproximations(accel);
    }
    /** Representative compile datasets and their traces. */
    std::vector<std::unique_ptr<axbench::Dataset>> compileDatasets;
    std::vector<std::unique_ptr<axbench::InvocationTrace>> compileTraces;
    /** Prepared threshold problem over the compile sets. */
    ThresholdProblem problem;
    /** Measured op counts. */
    axbench::BenchmarkCosts costs;
    /** Modeled per-invocation / per-dataset costs. */
    sim::RegionProfile profile;
    /** Mean final quality loss with 100% accelerator invocation. */
    double fullApproxLossMean = 0.0;
    /** Final training MSE of the NPU (normalized units). */
    double npuTrainMse = 0.0;
    /** Model parameters the profile was built with (evaluator reuse). */
    sim::CoreParams coreParams{};
    sim::SystemParams systemParams{};
};

/** Global pipeline knobs. */
struct PipelineOptions
{
    /** Representative datasets (paper: 250). 0 = paper default. */
    std::size_t compileDatasetCount = 0;
    /** Samples drawn from the traces to train the NPU. */
    std::size_t npuTrainSamples = 12000;
    /**
     * Tuples sampled for classifier training. The paper's trainer
     * *samples* the accelerator error sporadically rather than
     * labeling every invocation; cells that only rarely err escape
     * marking, which is what keeps the table design's false positives
     * (and the small false-negative rate) at the paper's levels.
     */
    std::size_t classifierTuples = 250000;
    /**
     * Closed-loop classifier calibration (paper Figure 2's feedback
     * from training to the knob): real classifiers miss some
     * large-error inputs they never saw (false negatives), which can
     * push unseen-dataset quality past the certified bound. After
     * training, the compiler re-runs the success measurement with the
     * *actual* classifier decisions on the compile sets and tightens
     * the labeling threshold until the Clopper–Pearson bound holds
     * end to end.
     */
    std::size_t maxCalibrationRounds = 5;
    /** Label-threshold tightening factor per calibration round. */
    double labelTighten = 0.6;
    sim::CoreParams coreParams{};
    npu::NpuParams npuParams{};
    sim::SystemParams systemParams{};
    std::uint64_t seed = 0x5eed;
};

/** Classifier bundle for one quality contract. */
struct QualityPackage
{
    QualitySpec spec;
    ThresholdResult threshold;
    /** Label thresholds after closed-loop calibration (<= tuned th). */
    double tableLabelThreshold = 0.0;
    double neuralLabelThreshold = 0.0;
    std::unique_ptr<TableClassifier> table;
    std::unique_ptr<NeuralClassifier> neural;
};

/** A calibrated classifier plus the labels it was trained against. */
template <typename ClassifierType>
struct CalibratedClassifier
{
    std::unique_ptr<ClassifierType> classifier;
    double labelThreshold = 0.0;
};

/** The compiler driver. */
class Pipeline
{
  public:
    explicit Pipeline(const PipelineOptions &options = PipelineOptions{});

    /** Run steps 1-4 above for one benchmark. */
    CompiledWorkload compile(const std::string &benchmarkName) const;

    /** Tune the knob and train both classifiers for a contract. */
    QualityPackage tune(const CompiledWorkload &workload,
                        const QualitySpec &spec,
                        const TableClassifierOptions &tableOptions =
                            TableClassifierOptions{},
                        const NeuralClassifierOptions &neuralOptions =
                            NeuralClassifierOptions{}) const;

    /** Calibrate just the table design against a tuned threshold. */
    CalibratedClassifier<TableClassifier> tuneTable(
        const CompiledWorkload &workload, const QualitySpec &spec,
        const ThresholdResult &threshold,
        const TableClassifierOptions &tableOptions =
            TableClassifierOptions{}) const;

    /** Calibrate just the neural design against a tuned threshold. */
    CalibratedClassifier<NeuralClassifier> tuneNeural(
        const CompiledWorkload &workload, const QualitySpec &spec,
        const ThresholdResult &threshold,
        const NeuralClassifierOptions &neuralOptions =
            NeuralClassifierOptions{}) const;

    /** Threshold only (cheaper when no classifier is needed). */
    ThresholdResult tuneThreshold(const CompiledWorkload &workload,
                                  const QualitySpec &spec) const;

    /** Labeled tuples for a tuned threshold. */
    TrainingData makeTrainingData(const CompiledWorkload &workload,
                                  double threshold) const;

    const PipelineOptions &options() const { return pipelineOptions; }

  private:
    PipelineOptions pipelineOptions;
};

} // namespace mithra::core

