#include "core/shard.hh"

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "stats/clopper_pearson.hh"

namespace mithra::core
{

ShardPlan::ShardPlan(std::size_t totalInvocations,
                     std::size_t shardCount)
    : total(totalInvocations), shards(shardCount)
{
    MITHRA_EXPECTS(shards >= 1, "a plan needs at least one shard");
}

std::size_t
ShardPlan::begin(std::size_t k) const
{
    MITHRA_EXPECTS(k <= shards, "shard index out of range: ", k);
    const std::size_t base = total / shards;
    const std::size_t rem = total % shards;
    return k * base + (k < rem ? k : rem);
}

std::size_t
defaultShardCount()
{
    return env::countIn("MITHRA_SHARDS", 1, 1024,
                        parallelThreadCount());
}

std::uint64_t
shardSeed(std::uint64_t baseSeed, std::size_t shard)
{
    // One SplitMix64 step over (base ^ golden * (shard + 1)): distinct
    // shards land in well-separated schedule streams even when the
    // base seeds are small consecutive integers.
    std::uint64_t state = baseSeed
        ^ (0x9e3779b97f4a7c15ULL
           * (static_cast<std::uint64_t>(shard) + 1));
    return splitMix64(state);
}

namespace
{

/**
 * The serial accounting pass over one decided block: watchdog
 * routing/audits, oracle false-decision counts and the online-sampling
 * schedule, in ascending index order. `decisions` holds decideBatch()
 * output on entry (1 = precise) and recompose() routing on exit
 * (1 = accelerate).
 */
void
accountBlock(const float *errors, watchdog::Watchdog *dog,
             const DecisionLoopOptions &options, std::size_t blockBegin,
             std::size_t blockEnd, std::uint8_t *decisions,
             ShardTally &tally)
{
    const auto oracleThreshold =
        static_cast<float>(options.oracleThreshold);
    for (std::size_t i = blockBegin; i < blockEnd; ++i) {
        bool precise = decisions[i] != 0;

        if (dog) {
            // The watchdog may overrule the classifier (DEGRADED
            // forces the precise path) and may schedule an audit,
            // served here from the trace's cached true error.
            const watchdog::Routing routing = dog->route(!precise);
            if (routing.auditPrecise)
                ++tally.auditPreciseRuns;
            if (routing.auditShadowAccel)
                ++tally.shadowAccelRuns;
            if (routing.audited())
                dog->reportAudit(errors[i]);
            precise = !routing.useAccel;
        }

        decisions[i] = precise ? 0 : 1;
        tally.accelerated += precise ? 0 : 1;

        // Oracle comparison for false-decision accounting.
        const bool oraclePrecise = errors[i] > oracleThreshold;
        if (precise && !oraclePrecise)
            ++tally.falsePositives;
        else if (!precise && oraclePrecise)
            ++tally.falseNegatives;

        // Sporadic online sampling (paper §IV-C.1): the schedule is a
        // pure function of (seed, global stream index), so any shard
        // partition selects the same invocations. The observations
        // themselves are deferred to the dataset boundary.
        if (options.onlineSampleRate > 0.0
            && indexedBernoulli(options.sampleSeed,
                                options.streamOffset + i,
                                options.onlineSampleRate)) {
            tally.sampledIndices.push_back(i);
        }
    }
}

/** Severity order for the combined state (worst wins). */
int
stateSeverity(watchdog::State state)
{
    switch (state) {
    case watchdog::State::Healthy:
        return 0;
    case watchdog::State::Recovered:
        return 1;
    case watchdog::State::Suspect:
        return 2;
    case watchdog::State::Degraded:
        return 3;
    }
    return 3;
}

} // namespace

void
runShardedDecisions(Classifier &classifier,
                    const axbench::InvocationTrace &trace,
                    const ShardPlan &plan,
                    std::vector<watchdog::Watchdog> &dogs,
                    const DecisionLoopOptions &options,
                    std::uint8_t *decisions,
                    std::vector<ShardTally> &tallies)
{
    MITHRA_EXPECTS(plan.total == trace.count(),
                   "plan covers ", plan.total, " invocations, trace has ",
                   trace.count());
    MITHRA_EXPECTS(dogs.empty() || dogs.size() == plan.shards,
                   "need one watchdog per shard or none, got ",
                   dogs.size(), " for ", plan.shards, " shards");
    MITHRA_EXPECTS(options.blockSize >= 1, "empty decision block");

    tallies.assign(plan.shards, ShardTally{});
    const float *inputs = trace.inputsFlat().data();
    const float *errors = trace.maxAbsErrors().data();
    const std::size_t width = trace.inputWidth();
    const bool approximate = classifier.approximationEnabled();

    parallelFor(0, plan.shards, 1, [&](std::size_t k) {
        const std::size_t shardBegin = plan.begin(k);
        const std::size_t shardEnd = plan.end(k);
        watchdog::Watchdog *dog = dogs.empty() ? nullptr : &dogs[k];
        ShardTally &tally = tallies[k];
        tally.invocations = shardEnd - shardBegin;

        for (std::size_t blockBegin = shardBegin;
             blockBegin < shardEnd; blockBegin += options.blockSize) {
            const std::size_t blockEnd =
                blockBegin + options.blockSize < shardEnd
                ? blockBegin + options.blockSize
                : shardEnd;
            const std::size_t count = blockEnd - blockBegin;

            // Batch-decide straight into the decisions buffer (shards
            // cover disjoint ranges), then run the serial accounting
            // pass which rewrites it into routing convention.
            if (approximate) {
                classifier.decideBatch(inputs + blockBegin * width,
                                       width, count, blockBegin,
                                       decisions + blockBegin);
            } else {
                // Fail closed: every decision is "precise".
                for (std::size_t i = 0; i < count; ++i)
                    decisions[blockBegin + i] = 1;
            }
            accountBlock(errors, dog, options, blockBegin, blockEnd,
                         decisions, tally);
        }
    });
}

void
mergeShardEvidence(const std::vector<watchdog::Watchdog> &dogs,
                   double confidence, ShardedEvaluation &out)
{
    MITHRA_EXPECTS(!dogs.empty(), "no shard evidence to merge");
    MITHRA_EXPECTS(out.shards.size() == dogs.size(),
                   "report has ", out.shards.size(), " shard slots for ",
                   dogs.size(), " watchdogs");

    out.watchdogEnabled = true;
    out.shardConfidence = stats::splitConfidence(confidence,
                                                 dogs.size());
    out.combinedState = watchdog::State::Healthy;
    out.violationEnvelope = stats::ProportionEnvelope{};

    std::size_t pooledAudits = 0;
    std::size_t pooledViolations = 0;
    for (std::size_t k = 0; k < dogs.size(); ++k) {
        const watchdog::Snapshot snap = dogs[k].snapshot();
        out.shards[k].watchdog = snap;

        if (stateSeverity(snap.state)
            > stateSeverity(out.combinedState))
            out.combinedState = snap.state;

        const stats::ProportionEnvelope shardEnvelope{
            snap.violationLowerBound, snap.violationUpperBound};
        out.violationEnvelope =
            stats::intersectEnvelopes(out.violationEnvelope,
                                      shardEnvelope);

        pooledAudits += snap.audits;
        pooledViolations += snap.violations;
    }

    if (pooledAudits > 0) {
        const stats::ProportionInterval pooled =
            stats::clopperPearsonInterval(pooledViolations, pooledAudits,
                                          confidence);
        out.pooledEnvelope = {pooled.lower, pooled.upper};
    } else {
        out.pooledEnvelope = stats::ProportionEnvelope{};
    }
}

} // namespace mithra::core
