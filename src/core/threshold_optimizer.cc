#include "core/threshold_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/kernels/kernels.hh"
#include "common/parallel.hh"
#include "stats/clopper_pearson.hh"

namespace mithra::core
{

ThresholdEntry
ThresholdProblem::makeEntry(const axbench::Benchmark &benchmark,
                            const axbench::Dataset &dataset,
                            const axbench::InvocationTrace &trace)
{
    MITHRA_ASSERT(trace.hasApproximations(),
                  "threshold entries need accelerator outputs");
    ThresholdEntry entry;
    entry.dataset = &dataset;
    entry.trace = &trace;
    entry.preciseFinal = benchmark.preciseOutput(dataset, trace);
    entry.errors.reserve(trace.count());
    for (std::size_t i = 0; i < trace.count(); ++i)
        entry.errors.push_back(trace.maxAbsError(i));
    return entry;
}

ThresholdOptimizer::ThresholdOptimizer(const QualitySpec &spec)
    : qualitySpec(spec)
{
    MITHRA_EXPECTS(spec.maxQualityLossPct > 0.0,
                   "quality loss target must be positive");
    MITHRA_EXPECTS(spec.confidence > 0.0 && spec.confidence < 1.0,
                   "confidence must be in (0, 1)");
    MITHRA_EXPECTS(spec.successRate > 0.0 && spec.successRate <= 1.0,
                   "success rate must be in (0, 1]");
}

ThresholdResult
ThresholdOptimizer::evaluate(const ThresholdProblem &problem,
                             double threshold) const
{
    MITHRA_EXPECTS(problem.benchmark, "problem has no benchmark");
    MITHRA_EXPECTS(!problem.entries.empty(), "problem has no datasets");

    // Each compile dataset's instrumented run is independent: recompose
    // and quality-loss work touch only that entry, and the integer
    // counters reduce in entry order.
    struct Tally
    {
        std::size_t successes = 0;
        std::size_t accelerated = 0;
        std::size_t total = 0;
    };

    const Tally tally = parallelMapReduce(
        0, problem.entries.size(), 1, Tally{},
        [&](std::size_t e) {
            const auto &entry = problem.entries[e];
            std::vector<std::uint8_t> decisions(entry.trace->count(), 0);
            Tally one;
            // Instrumented run (Algorithm 1 step 2): invoke the
            // accelerator only when its local error is within th. The
            // compare is one vectorized sweep over the error array —
            // this sits inside the bisection's hottest loop.
            one.accelerated = kernels::lessEqualMask(
                entry.errors.data(), entry.errors.size(),
                static_cast<float>(threshold), decisions.data());
            one.total = entry.trace->count();

            const auto recomposed = problem.benchmark->recompose(
                *entry.dataset, *entry.trace, decisions);
            const double loss = problem.benchmark->qualityLoss(
                entry.preciseFinal, recomposed);
            one.successes = loss <= qualitySpec.maxQualityLossPct ? 1 : 0;
            return one;
        },
        [](Tally a, const Tally &b) {
            a.successes += b.successes;
            a.accelerated += b.accelerated;
            a.total += b.total;
            return a;
        });

    ThresholdResult result;
    result.threshold = threshold;
    result.successes = tally.successes;
    result.trials = problem.entries.size();
    result.successLowerBound = stats::clopperPearsonLower(
        tally.successes, result.trials, qualitySpec.confidence);
    result.iterations = 1;
    result.invocationRate = tally.total
        ? static_cast<double>(tally.accelerated)
            / static_cast<double>(tally.total)
        : 0.0;
    return result;
}

namespace
{

/** Largest accelerator error seen across all compile datasets. */
double
maxObservedError(const ThresholdProblem &problem)
{
    double worst = 0.0;
    for (const auto &entry : problem.entries)
        for (float e : entry.errors)
            worst = std::max(worst, static_cast<double>(e));
    return worst;
}

} // namespace

ThresholdResult
ThresholdOptimizer::optimize(const ThresholdProblem &problem) const
{
    // Tightening the threshold monotonically shrinks the set of
    // accelerated invocations, so quality per dataset can only improve
    // and the success bound is (statistically) monotone. Bisect for
    // the loosest threshold whose lower bound still meets S.
    std::size_t iterations = 0;

    const double maxError = maxObservedError(problem);
    ThresholdResult atZero = evaluate(problem, 0.0);
    iterations += atZero.iterations;
    if (atZero.successLowerBound < qualitySpec.successRate) {
        // Even all-precise execution cannot meet the contract (the
        // guarantee is limited by the number of compile datasets).
        warn("quality contract unreachable: even th=0 gives lower ",
             "bound ", atZero.successLowerBound, " < ",
             qualitySpec.successRate);
        atZero.iterations = iterations;
        return atZero;
    }

    ThresholdResult atMax = evaluate(problem, maxError);
    iterations += atMax.iterations;
    if (atMax.successLowerBound >= qualitySpec.successRate) {
        atMax.iterations = iterations;
        return atMax; // full approximation already meets the contract
    }

    double lo = 0.0;
    double hi = maxError;
    ThresholdResult best = atZero;
    for (int step = 0; step < 32 && hi - lo > 1e-9 * (1.0 + hi);
         ++step) {
        const double mid = 0.5 * (lo + hi);
        ThresholdResult candidate = evaluate(problem, mid);
        ++iterations;
        if (candidate.successLowerBound >= qualitySpec.successRate) {
            best = candidate;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.iterations = iterations;
    return best;
}

MultiFunctionOptimizer::MultiFunctionOptimizer(const QualitySpec &spec)
    : qualitySpec(spec)
{
}

MultiFunctionResult
MultiFunctionOptimizer::evaluate(const MultiFunctionProblem &problem,
                                 const std::vector<double> &thresholds)
    const
{
    MITHRA_ASSERT(!problem.entries.empty(), "no datasets");

    MultiFunctionResult result;
    result.thresholds = thresholds;
    result.trials = problem.entries.size();

    // Entries evaluate concurrently, mirroring the single-function
    // evaluate(): all per-dataset state is local and the counters
    // reduce in entry order.
    struct Tally
    {
        std::size_t successes = 0;
        std::size_t accelerated = 0;
        std::size_t total = 0;
    };

    const Tally tally = parallelMapReduce(
        0, problem.entries.size(), 1, Tally{},
        [&](std::size_t e) {
            const auto &entry = problem.entries[e];
            MITHRA_ASSERT(entry.traces.size() == thresholds.size(),
                          "threshold tuple width mismatch");
            std::vector<std::vector<std::uint8_t>> decisions(
                entry.traces.size());
            Tally one;
            for (std::size_t f = 0; f < entry.traces.size(); ++f) {
                decisions[f].assign(entry.traces[f]->count(), 0);
                one.accelerated += kernels::lessEqualMask(
                    entry.errors[f].data(), entry.errors[f].size(),
                    static_cast<float>(thresholds[f]),
                    decisions[f].data());
                one.total += entry.traces[f]->count();
            }
            const auto recomposed = entry.recompose(decisions);
            const double loss = axbench::qualityLoss(
                problem.metric, entry.preciseFinal, recomposed);
            one.successes = loss <= qualitySpec.maxQualityLossPct ? 1 : 0;
            return one;
        },
        [](Tally a, const Tally &b) {
            a.successes += b.successes;
            a.accelerated += b.accelerated;
            a.total += b.total;
            return a;
        });

    result.successes = tally.successes;
    result.successLowerBound = stats::clopperPearsonLower(
        result.successes, result.trials, qualitySpec.confidence);
    result.invocationRate = tally.total
        ? static_cast<double>(tally.accelerated)
            / static_cast<double>(tally.total)
        : 0.0;
    return result;
}

MultiFunctionResult
MultiFunctionOptimizer::optimize(const MultiFunctionProblem &problem)
    const
{
    MITHRA_ASSERT(!problem.entries.empty(), "no datasets");
    const std::size_t functions = problem.entries.front().traces.size();

    // Per-function max observed error bounds the search.
    std::vector<double> maxError(functions, 0.0);
    for (const auto &entry : problem.entries) {
        for (std::size_t f = 0; f < functions; ++f) {
            for (float e : entry.errors[f]) {
                maxError[f] = std::max(maxError[f],
                                       static_cast<double>(e));
            }
        }
    }

    // Greedy: fix thresholds one function at a time, each maximized by
    // bisection while the joint contract still certifies.
    std::vector<double> thresholds(functions, 0.0);
    for (std::size_t f = 0; f < functions; ++f) {
        auto probe = thresholds;
        probe[f] = maxError[f];
        if (evaluate(problem, probe).successLowerBound
            >= qualitySpec.successRate) {
            thresholds[f] = maxError[f];
            continue;
        }

        double lo = 0.0;
        double hi = maxError[f];
        for (int step = 0; step < 24 && hi - lo > 1e-9 * (1.0 + hi);
             ++step) {
            probe[f] = 0.5 * (lo + hi);
            if (evaluate(problem, probe).successLowerBound
                >= qualitySpec.successRate) {
                lo = probe[f];
            } else {
                hi = probe[f];
            }
        }
        thresholds[f] = lo;
    }
    return evaluate(problem, thresholds);
}

ThresholdResult
ThresholdOptimizer::optimizeIterative(const ThresholdProblem &problem,
                                      double initial, double delta,
                                      std::size_t maxSteps) const
{
    MITHRA_EXPECTS(delta > 0.0, "delta must be positive");

    // Algorithm 1: adjust th by +/- delta until the success rate
    // straddles S between consecutive thresholds.
    double th = std::max(0.0, initial);
    ThresholdResult current = evaluate(problem, th);
    std::size_t iterations = current.iterations;
    bool lastMet = current.successLowerBound >= qualitySpec.successRate;
    ThresholdResult lastMeeting = lastMet ? current
                                          : evaluate(problem, 0.0);
    if (!lastMet)
        ++iterations;

    for (std::size_t step = 0; step < maxSteps; ++step) {
        const bool met =
            current.successLowerBound >= qualitySpec.successRate;
        if (met)
            lastMeeting = current;

        // Terminate when the previous threshold met S and the current
        // (looser) one does not (Algorithm 1 step 6).
        if (step > 0 && !met && lastMet)
            break;

        lastMet = met;
        th = met ? th + delta : std::max(0.0, th - delta);
        current = evaluate(problem, th);
        ++iterations;
    }

    lastMeeting.iterations = iterations;
    return lastMeeting;
}

} // namespace mithra::core
