/**
 * @file
 * The table-based MITHRA classifier (paper §IV-A).
 *
 * Wraps the hardware model (quantizer -> MISR ensemble -> OR gate)
 * with compile-time training, BDI compression of the trained tables
 * for the binary (Table II), online updates from sampled runtime
 * errors, and the cycle/energy overheads the system simulator charges.
 */

#pragma once

#include "core/classifier.hh"
#include "core/training_data.hh"
#include "hw/decision_table.hh"
#include "hw/quantizer.hh"

namespace mithra::core
{

/** Compile-time options for the table-based design. */
struct TableClassifierOptions
{
    /** Paper default (Pareto optimal): 8 tables x 0.5 KB. */
    hw::TableGeometry geometry{};
    /** Apply sampled online updates at runtime (paper §IV-C.1). */
    bool onlineUpdates = true;
    /** Quantizer code width; 0 = InputQuantizer::defaultBits(). */
    unsigned quantizerBits = 0;
};

/** The deployable table-based classifier. */
class TableClassifier final : public Classifier
{
  public:
    /** Energy of one read from one table (CACTI-like, 45 nm, pJ). */
    static constexpr double tableReadPj = 8.0;
    /** Energy of one MISR shift step (synthesis-like, 45 nm, pJ). */
    static constexpr double misrStepPj = 0.4;
    /** Cycles from the last input element to the OR-gate decision. */
    static constexpr double decisionLatencyCycles = 2.0;

    /**
     * Train from labeled tuples: greedy MISR assignment from the
     * 16-entry pool, conservative fill, then BDI-compress the tables.
     */
    static TableClassifier train(const TrainingData &data,
                                 const TableClassifierOptions &options);

    std::string kind() const override { return "table"; }
    bool decidePrecise(const Vec &input,
                       std::size_t invocationIndex) override;
    void decideBatch(const float *inputs, std::size_t width,
                     std::size_t count, std::size_t beginIndex,
                     std::uint8_t *out) override;
    void observe(const Vec &input, float actualError) override;
    sim::ClassifierCost cost() const override;
    std::size_t configSizeBytes() const override;

    /** Uncompressed table storage (geometry total). */
    std::size_t uncompressedSizeBytes() const;
    /** BDI-compressed size of the current table contents. */
    std::size_t compressedSizeBytes() const;
    /** Fraction of set bits across the tables. */
    double density() const { return ensemble.density(); }
    /** The underlying hardware ensemble (tests/diagnostics). */
    const hw::TableEnsemble &hardware() const { return ensemble; }
    /** Mutable ensemble access (fault injection harness). */
    hw::TableEnsemble &mutableHardware() { return ensemble; }
    /** Threshold used for labels and online updates. */
    double threshold() const { return errorThreshold; }
    /** Online updates applied so far. */
    std::size_t onlineUpdatesApplied() const { return updatesApplied; }

  private:
    TableClassifier(hw::InputQuantizer quantizer,
                    hw::TableEnsemble ensemble, double threshold,
                    bool onlineUpdates);

    hw::InputQuantizer quantizer;
    hw::TableEnsemble ensemble;
    double errorThreshold;
    bool onlineUpdatesEnabled;
    std::size_t updatesApplied = 0;
};

} // namespace mithra::core

