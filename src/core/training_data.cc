#include "core/training_data.hh"

#include <algorithm>

#include "common/contracts.hh"
#include "common/rng.hh"

namespace mithra::core
{

double
TrainingData::preciseFraction() const
{
    if (labels.empty())
        return 0.0;
    std::size_t precise = 0;
    for (std::uint8_t label : labels)
        precise += label;
    return static_cast<double>(precise)
        / static_cast<double>(labels.size());
}

TrainingData
buildTrainingData(const ThresholdProblem &problem, double threshold,
                  std::size_t maxTuples, std::uint64_t seed)
{
    MITHRA_EXPECTS(!problem.entries.empty(), "no compile datasets");
    MITHRA_EXPECTS(maxTuples > 0, "maxTuples must be positive");

    // Total invocations across the compile sets.
    std::size_t total = 0;
    for (const auto &entry : problem.entries)
        total += entry.trace->count();
    MITHRA_ASSERT(total > 0, "compile datasets have no invocations");

    // Uniform sampling without replacement via a keep probability;
    // a single image already provides hundreds of thousands of
    // samples (paper §III-B), so approximate uniformity is plenty.
    const double keep = std::min(
        1.0, static_cast<double>(maxTuples) / static_cast<double>(total));
    Rng rng(seed ^ 0x7261696eda7aULL);

    TrainingData data;
    data.threshold = threshold;

    // First pass: collect raw inputs and labels.
    for (const auto &entry : problem.entries) {
        for (std::size_t i = 0; i < entry.trace->count(); ++i) {
            if (keep < 1.0 && !rng.bernoulli(keep))
                continue;
            data.rawInputs.push_back(entry.trace->inputVec(i));
            data.labels.push_back(
                entry.errors[i] > static_cast<float>(threshold) ? 1 : 0);
        }
    }
    MITHRA_ASSERT(!data.rawInputs.empty(), "sampling produced no tuples");
    return data;
}

std::vector<hw::TrainingTuple>
TrainingData::quantized(const hw::InputQuantizer &quantizer) const
{
    // Stage every sampled input into one flat row-major buffer so the
    // quantizer runs as a single batched kernel sweep, then split the
    // codes back into per-tuple vectors for the ensemble trainer.
    const std::size_t width = quantizer.width();
    const std::size_t n = rawInputs.size();
    std::vector<float> flat(width * n);
    for (std::size_t i = 0; i < n; ++i) {
        MITHRA_EXPECTS(rawInputs[i].size() == width,
                       "ragged training input at tuple ", i);
        std::copy(rawInputs[i].begin(), rawInputs[i].end(),
                  flat.begin() + static_cast<std::ptrdiff_t>(i * width));
    }
    std::vector<std::uint8_t> codes(width * n);
    quantizer.quantizeBatch(flat.data(), n, codes.data());

    std::vector<hw::TrainingTuple> tuples(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto begin =
            codes.begin() + static_cast<std::ptrdiff_t>(i * width);
        tuples[i].codes.assign(begin,
                               begin
                                   + static_cast<std::ptrdiff_t>(width));
        tuples[i].precise = labels[i] != 0;
    }
    return tuples;
}

} // namespace mithra::core
