#include "core/experiment.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "axbench/registry.hh"
#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/parallel.hh"
#include "common/scale.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core
{

std::string
designName(Design design)
{
    switch (design) {
      case Design::FullApprox: return "full-approx";
      case Design::Oracle: return "oracle";
      case Design::Table: return "table";
      case Design::Neural: return "neural";
      case Design::Random: return "random";
    }
    panic("unknown design");
}

ResultCache::ResultCache(const std::string &path)
    : filePath(path)
{
    load();
}

void
ResultCache::load()
{
    std::ifstream in(filePath);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        entries[line.substr(0, tab)] = line.substr(tab + 1);
    }
}

std::optional<std::string>
ResultCache::get(const std::string &key) const
{
    const auto it = entries.find(key);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    entries[key] = value;
    append(key, value);
}

std::size_t
ResultCache::refresh()
{
    std::ifstream in(filePath);
    if (!in)
        return 0;
    std::size_t adopted = 0;
    std::string line;
    while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        // emplace never overwrites: the in-memory value wins.
        if (entries.emplace(line.substr(0, tab), line.substr(tab + 1))
                .second)
            ++adopted;
    }
    return adopted;
}

void
ResultCache::append(const std::string &key, const std::string &value)
{
    // One whole-line write(2) under an advisory exclusive lock:
    // concurrent appenders to a shared $MITHRA_CACHE serialize at row
    // granularity, so readers never see a torn row. O_APPEND makes the
    // kernel pick the offset after the lock is held.
    const int fd = ::open(filePath.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        warn("cannot append to result cache at ", filePath);
        return;
    }
    std::string row;
    row.reserve(key.size() + value.size() + 2);
    row += key;
    row += '\t';
    row += value;
    row += '\n';
    if (::flock(fd, LOCK_EX) != 0) {
        warn("cannot lock result cache at ", filePath);
        ::close(fd);
        return;
    }
    std::size_t written = 0;
    while (written < row.size()) {
        const ssize_t n = ::write(fd, row.data() + written,
                                  row.size() - written);
        if (n <= 0) {
            warn("short write to result cache at ", filePath);
            break;
        }
        written += static_cast<std::size_t>(n);
    }
    ::flock(fd, LOCK_UN);
    ::close(fd);
}

bool
RunOptions::isDefault() const
{
    const hw::TableGeometry defaults{};
    return geometry.numTables == defaults.numTables
        && geometry.tableBytes == defaults.tableBytes
        && quantizerBits == 0 && onlineUpdates && !skipCalibration
        && randomPreciseFraction == 0.0;
}

namespace
{

std::string
cachePath()
{
    return env::text("MITHRA_CACHE", ".mithra-cache.tsv");
}

std::string
serializeRecord(const ExperimentRecord &record)
{
    const auto &e = record.eval;
    std::ostringstream os;
    os.precision(17);
    os << e.kind << ' ' << e.meanQualityLoss << ' ' << e.p99QualityLoss
       << ' ' << e.successes << ' ' << e.trials << ' '
       << e.successLowerBound << ' ' << e.invocationRate << ' '
       << e.speedup << ' ' << e.energyReduction << ' '
       << e.edpImprovement << ' ' << e.falsePositiveRate << ' '
       << e.falseNegativeRate << ' ' << e.totals.cycles << ' '
       << e.totals.energyPj << ' ' << e.baselineTotals.cycles << ' '
       << e.baselineTotals.energyPj << ' ' << record.threshold << ' '
       << record.compressedBytes << ' '
       << (record.topology.empty() ? "-" : record.topology);
    return os.str();
}

ExperimentRecord
parseRecord(const std::string &text)
{
    ExperimentRecord record;
    auto &e = record.eval;
    std::istringstream is(text);
    is >> e.kind >> e.meanQualityLoss >> e.p99QualityLoss >> e.successes
        >> e.trials >> e.successLowerBound >> e.invocationRate
        >> e.speedup >> e.energyReduction >> e.edpImprovement
        >> e.falsePositiveRate >> e.falseNegativeRate >> e.totals.cycles
        >> e.totals.energyPj >> e.baselineTotals.cycles
        >> e.baselineTotals.energyPj >> record.threshold
        >> record.compressedBytes >> record.topology;
    MITHRA_ASSERT(!is.fail(), "corrupt cache record: ", text);
    if (record.topology == "-")
        record.topology.clear();
    return record;
}

std::string
serializeWorkload(const WorkloadRecord &record)
{
    std::ostringstream os;
    os.precision(17);
    // Domain and metric names contain spaces; encode them with '_'.
    auto encode = [](std::string s) {
        for (auto &c : s)
            if (c == ' ')
                c = '_';
        return s;
    };
    os << encode(record.domain) << ' ' << encode(record.metricName)
       << ' ' << record.npuTopology << ' ' << record.fullApproxLossMean
       << ' ' << record.npuTrainMse << ' '
       << record.preciseCyclesPerInvocation << ' '
       << record.accelCyclesPerInvocation << ' '
       << record.invocationsPerDataset;
    return os.str();
}

WorkloadRecord
parseWorkload(const std::string &text)
{
    WorkloadRecord record;
    std::istringstream is(text);
    is >> record.domain >> record.metricName >> record.npuTopology
        >> record.fullApproxLossMean >> record.npuTrainMse
        >> record.preciseCyclesPerInvocation
        >> record.accelCyclesPerInvocation
        >> record.invocationsPerDataset;
    MITHRA_ASSERT(!is.fail(), "corrupt workload record: ", text);
    auto decode = [](std::string s) {
        for (auto &c : s)
            if (c == '_')
                c = ' ';
        return s;
    };
    record.domain = decode(record.domain);
    record.metricName = decode(record.metricName);
    return record;
}

} // namespace

ExperimentRunner::ExperimentRunner(const PipelineOptions &options)
    : pipeline(options), cache(cachePath())
{
}

std::string
ExperimentRunner::specKey(const QualitySpec &spec) const
{
    std::ostringstream os;
    os.precision(10);
    os << spec.maxQualityLossPct << ':' << spec.confidence << ':'
       << spec.successRate;
    return os.str();
}

std::string
ExperimentRunner::cacheKey(const std::string &benchmark,
                           const QualitySpec &spec, Design design,
                           const RunOptions &options) const
{
    std::ostringstream os;
    os.precision(10);
    // v6: the sharded decision loop moved online observations to
    // dataset boundaries, so evaluations are not bit-comparable with
    // v5 records even at one shard.
    os << "v6:" << benchmark;
    // Plugin workloads fold their origin and ABI version into the key:
    // a rebuilt plugin (or a future ABI) must never share cached
    // results with an older binary of the same name. Built-ins add
    // nothing, so their keys are unchanged from v6.
    const std::string pluginTag =
        axbench::WorkloadRegistry::global().cacheTag(benchmark);
    if (!pluginTag.empty())
        os << ":plugin=" << pluginTag;
    os << ':' << specKey(spec) << ':'
       << designName(design) << ':' << options.geometry.numTables << 'x'
       << options.geometry.tableBytes << ':' << options.quantizerBits
       << ':' << (options.onlineUpdates ? 1 : 0)
       << (options.skipCalibration ? ":nc" : "") << ':'
       << options.randomPreciseFraction << ":s"
       << experimentScale() << ":d"
       << pipeline.options().compileDatasetCount << ":x"
       << pipeline.options().seed;
    // The watchdog changes what an evaluation measures (audit runs
    // feed the cost model), so a watchdog-enabled run must never
    // share a cache line with a plain one. The shard count joins the
    // suffix because each shard owns an independently seeded watchdog:
    // with the watchdog on, MITHRA_SHARDS is semantic configuration.
    // Watchdog-off evaluations are shard-invariant, so they share one
    // key at any shard count.
    const watchdog::WatchdogOptions wd = watchdog::WatchdogOptions::fromEnv();
    if (wd.enabled) {
        os << ":wd" << wd.baseAuditRate << ',' << wd.suspectAuditRate
           << ',' << wd.degradedAuditRate << ',' << wd.maxViolationRate
           << ',' << wd.confidence << ',' << wd.seed << ",n"
           << defaultShardCount();
    }
    return os.str();
}

ExperimentRunner::LoadedWorkload &
ExperimentRunner::loaded(const std::string &benchmark)
{
    auto it = workloads.find(benchmark);
    if (it == workloads.end()) {
        LoadedWorkload entry;
        entry.workload = pipeline.compile(benchmark);
        entry.validation = makeValidationSet(entry.workload);
        it = workloads.emplace(benchmark, std::move(entry)).first;
    }
    return it->second;
}

const CompiledWorkload &
ExperimentRunner::workload(const std::string &benchmark)
{
    return loaded(benchmark).workload;
}

QualityPackage &
ExperimentRunner::qualityPackage(const std::string &benchmark,
                                 const QualitySpec &spec)
{
    auto &entry = loaded(benchmark);
    return package(entry, spec);
}

TableClassifier &
ExperimentRunner::tunedTableClassifier(const std::string &benchmark,
                                       const QualitySpec &spec)
{
    auto &entry = loaded(benchmark);
    QualityPackage &pkg = package(entry, spec);
    if (!pkg.table) {
        auto tuned = pipeline.tuneTable(entry.workload, spec,
                                        pkg.threshold,
                                        TableClassifierOptions{});
        pkg.table = std::move(tuned.classifier);
    }
    return *pkg.table;
}

void
ExperimentRunner::prefetch(const std::vector<std::string> &benchmarks)
{
    std::vector<std::string> missing;
    for (const auto &name : benchmarks) {
        if (!workloads.contains(name))
            missing.push_back(name);
    }
    if (missing.empty())
        return;

    // Build into local slots across the pool (each workload's own
    // parallel regions then run inline), and only then populate the
    // map serially — loaded() never observes a half-built entry.
    std::vector<LoadedWorkload> built(missing.size());
    parallelFor(0, missing.size(), 1, [&](std::size_t i) {
        built[i].workload = pipeline.compile(missing[i]);
        built[i].validation = makeValidationSet(built[i].workload);
    });
    for (std::size_t i = 0; i < missing.size(); ++i)
        workloads.emplace(missing[i], std::move(built[i]));
}

void
ExperimentRunner::prefetch(const std::vector<std::string> &benchmarks,
                           const std::vector<QualitySpec> &specs,
                           const std::vector<Design> &designs,
                           const RunOptions &options)
{
    std::vector<std::string> needed;
    for (const auto &name : benchmarks) {
        bool miss = false;
        for (const auto &spec : specs) {
            for (const Design design : designs) {
                if (!cache.get(cacheKey(name, spec, design, options))) {
                    miss = true;
                    break;
                }
            }
            if (miss)
                break;
        }
        if (miss)
            needed.push_back(name);
    }
    prefetch(needed);
}

void
ExperimentRunner::prefetchFacts(const std::vector<std::string> &benchmarks)
{
    std::vector<std::string> needed;
    for (const auto &name : benchmarks) {
        if (!cache.get(factsKey(name)))
            needed.push_back(name);
    }
    prefetch(needed);
}

QualityPackage &
ExperimentRunner::package(LoadedWorkload &entry, const QualitySpec &spec)
{
    const std::string key = specKey(spec);
    auto it = entry.packages.find(key);
    if (it == entry.packages.end()) {
        QualityPackage pkg;
        pkg.spec = spec;
        pkg.threshold = pipeline.tuneThreshold(entry.workload, spec);
        it = entry.packages.emplace(key, std::move(pkg)).first;
    }
    return it->second;
}

ExperimentRecord
ExperimentRunner::run(const std::string &benchmark,
                      const QualitySpec &spec, Design design,
                      const RunOptions &options)
{
    const std::string key = cacheKey(benchmark, spec, design, options);
    if (const auto cached = cache.get(key)) {
        MITHRA_COUNT("core.experiment.cache_hits", 1);
        return parseRecord(*cached);
    }
    MITHRA_COUNT("core.experiment.cache_misses", 1);

    LoadedWorkload &entry = loaded(benchmark);
    QualityPackage &pkg = package(entry, spec);
    EvaluationOptions evalOptions;
    evalOptions.watchdog = watchdog::WatchdogOptions::fromEnv();
    const Evaluator evaluator(entry.workload, spec,
                              pkg.threshold.threshold, evalOptions);

    ExperimentRecord record;
    record.threshold = pkg.threshold.threshold;

    switch (design) {
      case Design::FullApprox:
        record.eval = evaluator.evaluateFullApprox(entry.validation);
        break;
      case Design::Oracle:
        record.eval = evaluator.evaluateOracle(entry.validation);
        break;
      case Design::Table: {
        TableClassifierOptions tableOpts;
        tableOpts.geometry = options.geometry;
        tableOpts.quantizerBits = options.quantizerBits;
        tableOpts.onlineUpdates = options.onlineUpdates;
        // Reuse the default-options classifier across binaries via the
        // package; bespoke options always retrain.
        if (options.isDefault() && pkg.table) {
            TableClassifier copy = *pkg.table; // keep cached one pristine
            record.eval = evaluator.evaluate(copy, entry.validation);
            record.compressedBytes = static_cast<double>(
                pkg.table->compressedSizeBytes());
        } else if (options.skipCalibration) {
            const TrainingData data = pipeline.makeTrainingData(
                entry.workload, pkg.threshold.threshold);
            auto trained = TableClassifier::train(data, tableOpts);
            record.compressedBytes =
                static_cast<double>(trained.compressedSizeBytes());
            record.eval = evaluator.evaluate(trained, entry.validation);
        } else {
            auto tuned = pipeline.tuneTable(entry.workload, spec,
                                            pkg.threshold, tableOpts);
            if (options.isDefault())
                pkg.table = std::move(tuned.classifier);
            TableClassifier &trained =
                options.isDefault() ? *pkg.table : *tuned.classifier;
            record.compressedBytes =
                static_cast<double>(trained.compressedSizeBytes());
            TableClassifier copy = trained;
            record.eval = evaluator.evaluate(copy, entry.validation);
        }
        break;
      }
      case Design::Neural: {
        if (!pkg.neural) {
            auto tuned = pipeline.tuneNeural(entry.workload, spec,
                                             pkg.threshold);
            pkg.neural = std::move(tuned.classifier);
        }
        record.eval = evaluator.evaluate(*pkg.neural, entry.validation);
        record.topology = npu::topologyName(pkg.neural->topology());
        record.compressedBytes =
            static_cast<double>(pkg.neural->configSizeBytes());
        break;
      }
      case Design::Random:
        record.eval = evaluator.evaluateRandom(
            entry.validation, options.randomPreciseFraction);
        break;
    }

    cache.put(key, serializeRecord(record));
    return record;
}

bool
ExperimentRunner::isCached(const std::string &benchmark,
                           const QualitySpec &spec, Design design,
                           const RunOptions &options) const
{
    return cache.get(cacheKey(benchmark, spec, design, options))
        .has_value();
}

std::vector<ExperimentRecord>
ExperimentRunner::runMany(const std::string &benchmark,
                          const QualitySpec &spec, Design design,
                          const std::vector<RunOptions> &optionsList)
{
    MITHRA_SPAN("core.experiment.run_many");
    std::vector<ExperimentRecord> records(optionsList.size());

    // Serve cached cells, and push everything the parallel fan-out
    // cannot reproduce bit-for-bit through the serial path. That
    // leaves the skipCalibration Table cells: they share one
    // training-data build and train/evaluate an independent classifier
    // per candidate, so they parallelize without touching shared
    // state.
    std::vector<std::size_t> fan;
    for (std::size_t i = 0; i < optionsList.size(); ++i) {
        const std::string key =
            cacheKey(benchmark, spec, design, optionsList[i]);
        if (const auto cached = cache.get(key)) {
            MITHRA_COUNT("core.experiment.cache_hits", 1);
            records[i] = parseRecord(*cached);
        } else if (design == Design::Table
                   && optionsList[i].skipCalibration) {
            fan.push_back(i);
        } else {
            records[i] = run(benchmark, spec, design, optionsList[i]);
        }
    }
    if (fan.empty())
        return records;
    MITHRA_COUNT("core.experiment.cache_misses", fan.size());

    LoadedWorkload &entry = loaded(benchmark);
    QualityPackage &pkg = package(entry, spec);
    const TrainingData data = pipeline.makeTrainingData(
        entry.workload, pkg.threshold.threshold);
    EvaluationOptions evalOptions;
    evalOptions.watchdog = watchdog::WatchdogOptions::fromEnv();
    const Evaluator evaluator(entry.workload, spec,
                              pkg.threshold.threshold, evalOptions);

    parallelFor(0, fan.size(), 1, [&](std::size_t slot) {
        const std::size_t at = fan[slot];
        const RunOptions &options = optionsList[at];
        TableClassifierOptions tableOpts;
        tableOpts.geometry = options.geometry;
        tableOpts.quantizerBits = options.quantizerBits;
        tableOpts.onlineUpdates = options.onlineUpdates;
        ExperimentRecord record;
        record.threshold = pkg.threshold.threshold;
        auto trained = TableClassifier::train(data, tableOpts);
        record.compressedBytes =
            static_cast<double>(trained.compressedSizeBytes());
        record.eval = evaluator.evaluate(trained, entry.validation);
        records[at] = std::move(record);
    });

    // Slot-ordered merge: rows land in candidate order, exactly the
    // file serial run() calls would have produced.
    for (const std::size_t at : fan) {
        cache.put(cacheKey(benchmark, spec, design, optionsList[at]),
                  serializeRecord(records[at]));
    }
    return records;
}

std::string
ExperimentRunner::factsKey(const std::string &benchmark) const
{
    std::ostringstream keyStream;
    keyStream << "meta:v5:" << benchmark;
    const std::string pluginTag =
        axbench::WorkloadRegistry::global().cacheTag(benchmark);
    if (!pluginTag.empty())
        keyStream << ":plugin=" << pluginTag;
    keyStream << ":s" << experimentScale()
              << ":d" << pipeline.options().compileDatasetCount << ":x"
              << pipeline.options().seed;
    return keyStream.str();
}

WorkloadRecord
ExperimentRunner::workloadFacts(const std::string &benchmark)
{
    const std::string key = factsKey(benchmark);
    if (const auto cached = cache.get(key))
        return parseWorkload(*cached);

    LoadedWorkload &entry = loaded(benchmark);
    WorkloadRecord record;
    record.domain = entry.workload.benchmark->domain();
    record.metricName = entry.workload.benchmark->metricLabel();
    record.npuTopology =
        npu::topologyName(entry.workload.benchmark->npuTopology());
    record.fullApproxLossMean = entry.workload.fullApproxLossMean;
    record.npuTrainMse = entry.workload.npuTrainMse;
    record.preciseCyclesPerInvocation = entry.workload.profile.preciseCycles;
    record.accelCyclesPerInvocation = entry.workload.profile.accelCycles;
    record.invocationsPerDataset =
        entry.workload.profile.invocationsPerDataset;

    cache.put(key, serializeWorkload(record));
    return record;
}

std::vector<double>
ExperimentRunner::elementErrorSample(const std::string &benchmark,
                                     std::size_t maxSamples)
{
    LoadedWorkload &entry = loaded(benchmark);
    const auto &bench = *entry.workload.benchmark;

    std::vector<double> errors;
    for (const auto &validationEntry : entry.validation.entries) {
        const auto approxFinal = bench.approxOutput(
            *validationEntry.dataset, *validationEntry.trace);
        const auto elementErrs = axbench::elementErrors(
            bench.metric(), validationEntry.preciseFinal, approxFinal);
        errors.insert(errors.end(), elementErrs.begin(),
                      elementErrs.end());
        if (errors.size() >= maxSamples)
            break;
    }
    if (errors.size() > maxSamples)
        errors.resize(maxSamples);
    return errors;
}

} // namespace mithra::core
