/**
 * @file
 * Fixed-width table printing and number formatting for the benchmark
 * harness binaries that regenerate the paper's tables and figures.
 */

#pragma once

#include <string>
#include <vector>

namespace mithra::core
{

/** Format helpers. */
std::string fmtPct(double value, int decimals = 1);
std::string fmtRatio(double value, int decimals = 2);
std::string fmtBytes(double bytes);
std::string fmtKb(double bytes, int decimals = 2);
std::string fmtCount(double value);

/** A simple aligned console table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Queue one row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Print headers, separator and all rows to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a "== Figure N: title ==" banner. */
void printBanner(const std::string &title);

} // namespace mithra::core

