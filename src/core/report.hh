/**
 * @file
 * Fixed-width table printing and number formatting for the benchmark
 * harness binaries that regenerate the paper's tables and figures.
 */

#pragma once

#include <string>
#include <vector>

#include "common/format.hh"

namespace mithra::core
{

// The format helpers moved to common/format.hh (the telemetry dump
// shares them); re-exported here for the harness binaries.
using mithra::fmtBytes;
using mithra::fmtCount;
using mithra::fmtKb;
using mithra::fmtPct;
using mithra::fmtRatio;

/** A simple aligned console table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Queue one row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Print headers, separator and all rows to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a "== Figure N: title ==" banner. */
void printBanner(const std::string &title);

} // namespace mithra::core

