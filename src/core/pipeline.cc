#include "core/pipeline.hh"

#include <algorithm>

#include "axbench/registry.hh"
#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/scale.hh"
#include "sim/core_model.hh"
#include "stats/clopper_pearson.hh"
#include "telemetry/telemetry.hh"

namespace mithra::core
{

Pipeline::Pipeline(const PipelineOptions &options)
    : pipelineOptions(options)
{
}

namespace
{

/** Sample (input, precise output) pairs across traces to train the NPU. */
void
sampleNpuTraining(
    const std::vector<std::unique_ptr<axbench::InvocationTrace>> &traces,
    std::size_t maxSamples, std::uint64_t seed, VecBatch &inputs,
    VecBatch &outputs)
{
    std::size_t total = 0;
    for (const auto &trace : traces)
        total += trace->count();
    MITHRA_ASSERT(total > 0, "no invocations to sample");

    const double keep = std::min(
        1.0, static_cast<double>(maxSamples) / static_cast<double>(total));

    // Each trace samples from its own RNG stream split off the seed, so
    // the drawn set depends only on (seed, trace index) — identical at
    // any thread count — and traces can sample concurrently. Per-trace
    // batches are concatenated in trace order.
    std::vector<std::pair<VecBatch, VecBatch>> perTrace(traces.size());
    parallelFor(0, traces.size(), 1, [&](std::size_t t) {
        Rng rng = rngStream(seed ^ 0x6e70755f747261ULL, t);
        const auto &trace = *traces[t];
        auto &[localIn, localOut] = perTrace[t];
        for (std::size_t i = 0; i < trace.count(); ++i) {
            if (keep < 1.0 && !rng.bernoulli(keep))
                continue;
            const auto in = trace.input(i);
            const auto out = trace.preciseOutput(i);
            localIn.emplace_back(in.begin(), in.end());
            localOut.emplace_back(out.begin(), out.end());
        }
    });

    for (auto &[localIn, localOut] : perTrace) {
        std::move(localIn.begin(), localIn.end(),
                  std::back_inserter(inputs));
        std::move(localOut.begin(), localOut.end(),
                  std::back_inserter(outputs));
    }
}

} // namespace

CompiledWorkload
Pipeline::compile(const std::string &benchmarkName) const
{
    MITHRA_SPAN("core.pipeline.compile");
    MITHRA_COUNT("core.pipeline.compiles", 1);
    CompiledWorkload workload;
    workload.benchmark = axbench::makeBenchmark(benchmarkName);
    const auto &bench = *workload.benchmark;
    workload.backend = bench.makeAccelerator();

    const std::size_t datasetCount = pipelineOptions.compileDatasetCount
        ? pipelineOptions.compileDatasetCount
        : numCompileDatasets();

    inform("compile[", benchmarkName, "]: generating ", datasetCount,
           " datasets and tracing");
    // Datasets are seeded per index, so generation and tracing are
    // independent across d and fill pre-sized slots in parallel.
    workload.compileDatasets.resize(datasetCount);
    workload.compileTraces.resize(datasetCount);
    {
        MITHRA_SPAN("core.pipeline.dataset_gen");
        parallelFor(0, datasetCount, 1, [&](std::size_t d) {
            auto dataset = bench.makeDataset(
                axbench::compileSeed(benchmarkName, d));
            workload.compileTraces[d] =
                std::make_unique<axbench::InvocationTrace>(
                    bench.trace(*dataset));
            workload.compileDatasets[d] = std::move(dataset);
        });
    }
    MITHRA_COUNT("core.pipeline.datasets", datasetCount);
    std::size_t tracedInvocations = 0;
    for (const auto &trace : workload.compileTraces)
        tracedInvocations += trace->count();
    MITHRA_COUNT("core.pipeline.traced_invocations", tracedInvocations);

    // Train the accelerator on sampled invocations (the paper's NPU
    // workflow: the compiler collects input/output pairs of the target
    // function and trains the network offline).
    VecBatch trainIn, trainOut;
    sampleNpuTraining(workload.compileTraces,
                      pipelineOptions.npuTrainSamples,
                      pipelineOptions.seed, trainIn, trainOut);
    if (workload.backend) {
        inform("compile[", benchmarkName, "]: training ",
               workload.backend->kind(), " backend on ", trainIn.size(),
               " samples");
        MITHRA_SPAN("core.pipeline.npu_train");
        workload.npuTrainMse = workload.backend->trainToMimic(
            trainIn, trainOut, pipelineOptions.seed);
    } else {
        inform("compile[", benchmarkName, "]: training NPU ",
               npu::topologyName(bench.npuTopology()), " on ",
               trainIn.size(), " samples");
        MITHRA_SPAN("core.pipeline.npu_train");
        workload.npuTrainMse = workload.accel.trainToMimic(
            bench.npuTopology(), trainIn, trainOut,
            bench.npuTrainerOptions());
    }
#if MITHRA_TELEMETRY_ENABLED
    // Keyed per benchmark: workloads may compile concurrently (the
    // experiment runner's prefetch), so a shared last-write-wins gauge
    // would depend on completion order and break the bitwise
    // thread-count determinism of dumps and run reports.
    telemetry::StatsRegistry::global()
        .gauge("core.pipeline.npu_train_mse." + benchmarkName)
        .set(workload.npuTrainMse);
#endif

    // Attach approximate outputs to every trace and build the
    // threshold problem. Each dataset's attach/entry/loss work only
    // touches its own slot; the loss partials reduce in dataset order.
    workload.problem.benchmark = &bench;
    workload.problem.entries.resize(workload.compileTraces.size());
    double lossSum = 0.0;
    {
        MITHRA_SPAN("core.pipeline.attach");
        lossSum = parallelMapReduce(
            0, workload.compileTraces.size(), 1, 0.0,
            [&](std::size_t d) {
                auto &trace = *workload.compileTraces[d];
                workload.attachApproximations(trace);
                workload.problem.entries[d] = ThresholdProblem::makeEntry(
                    bench, *workload.compileDatasets[d], trace);

                const auto approxFinal = bench.approxOutput(
                    *workload.compileDatasets[d], trace);
                return bench.qualityLoss(
                    workload.problem.entries[d].preciseFinal, approxFinal);
            },
            [](double a, double b) { return a + b; });
    }
    workload.fullApproxLossMean =
        lossSum / static_cast<double>(workload.compileTraces.size());

    // Cost profile.
    workload.coreParams = pipelineOptions.coreParams;
    workload.systemParams = pipelineOptions.systemParams;
    workload.costs = bench.measureCosts();
    const sim::CoreModel core(pipelineOptions.coreParams);
    const npu::NpuCostModel npuCost(pipelineOptions.npuParams);

    sim::RegionProfile &profile = workload.profile;
    profile.preciseCycles =
        core.cycles(workload.costs.targetOpsPerInvocation)
        + pipelineOptions.coreParams.regionOverheadCycles;
    profile.preciseEnergyPj = core.energyPj(profile.preciseCycles);
    if (workload.backend) {
        const auto accelCost = workload.backend->invocationCost();
        profile.accelCycles = static_cast<double>(accelCost.cycles);
        profile.accelEnergyPj = accelCost.picoJoules;
    } else {
        const auto accelCost = npuCost.invocationCost(
            workload.accel.network());
        profile.accelCycles = static_cast<double>(accelCost.cycles);
        profile.accelEnergyPj = accelCost.picoJoules;
    }
    profile.invocationsPerDataset =
        workload.compileTraces.front()->count();
    profile.otherCyclesPerDataset =
        core.cycles(workload.costs.otherOpsPerDataset);
    profile.otherEnergyPjPerDataset =
        core.energyPj(profile.otherCyclesPerDataset);

    inform("compile[", benchmarkName, "]: full-approx loss ",
           workload.fullApproxLossMean, "%, precise ",
           profile.preciseCycles, " cyc/inv, NPU ", profile.accelCycles,
           " cyc/inv");
    return workload;
}

ThresholdResult
Pipeline::tuneThreshold(const CompiledWorkload &workload,
                        const QualitySpec &spec) const
{
    MITHRA_SPAN("core.pipeline.threshold_search");
    MITHRA_COUNT("core.pipeline.threshold_searches", 1);
    const ThresholdOptimizer optimizer(spec);
    return optimizer.optimize(workload.problem);
}

TrainingData
Pipeline::makeTrainingData(const CompiledWorkload &workload,
                           double threshold) const
{
    return buildTrainingData(workload.problem, threshold,
                             pipelineOptions.classifierTuples,
                             pipelineOptions.seed);
}

namespace
{

/** Outcome of one classifier-in-the-loop compile measurement. */
struct CalibrationMeasurement
{
    double successBound = 0.0;
    double invocationRate = 0.0;
};

/**
 * Success bound and invocation rate of a trained classifier measured
 * end to end (Algorithm 1's measurement, but with the real
 * classifier's decisions instead of the oracle's) over the *held-out*
 * half of the compile datasets — the half the training tuples were not
 * sampled from, so memorizing classifiers cannot inflate the bound.
 */
CalibrationMeasurement
calibrationMeasure(const CompiledWorkload &workload,
                   Classifier &classifier, const QualitySpec &spec)
{
    // Held-out datasets are measured concurrently. The classifiers
    // calibrated here (table, neural) decide each invocation from the
    // input alone — beginDataset is a no-op for them and decidePrecise
    // holds no mutable state — so sharing one classifier across
    // datasets is safe; per-dataset counters reduce in entry order.
    struct Tally
    {
        std::size_t successes = 0;
        std::size_t trials = 0;
        std::size_t accel = 0;
        std::size_t total = 0;
    };

    const std::size_t numHeldOut = workload.problem.entries.size() / 2;
    const Tally tally = parallelMapReduce(
        0, numHeldOut, 1, Tally{},
        [&](std::size_t k) {
            const std::size_t e = 2 * k + 1;
            const auto &entry = workload.problem.entries[e];
            const auto &trace = *entry.trace;
            classifier.beginDataset(trace);
            std::vector<std::uint8_t> decisions(trace.count(), 0);
            Tally one;
            if (classifier.approximationEnabled()) {
                // One batch call over the trace's flat input buffer:
                // the table and neural designs vectorize inside
                // decideBatch (fail-closed classifiers keep every
                // decision at 0 = precise).
                std::vector<std::uint8_t> precise(trace.count());
                classifier.decideBatch(trace.inputsFlat().data(),
                                       trace.inputWidth(), trace.count(),
                                       0, precise.data());
                for (std::size_t i = 0; i < trace.count(); ++i) {
                    decisions[i] = precise[i] ? 0 : 1;
                    one.accel += precise[i] ? 0u : 1u;
                }
            }
            one.total = trace.count();
            const auto recomposed = workload.benchmark->recompose(
                *entry.dataset, trace, decisions);
            const double loss = workload.benchmark->qualityLoss(
                entry.preciseFinal, recomposed);
            one.successes = loss <= spec.maxQualityLossPct ? 1 : 0;
            one.trials = 1;
            return one;
        },
        [](Tally a, const Tally &b) {
            a.successes += b.successes;
            a.trials += b.trials;
            a.accel += b.accel;
            a.total += b.total;
            return a;
        });

    // Bulk counts after the ordered reduction: thread-count
    // independent, so safe as deterministic stats.
    MITHRA_COUNT("core.calibration.measurements", 1);
    MITHRA_COUNT("core.calibration.datasets_measured", tally.trials);
    MITHRA_COUNT("core.calibration.dataset_successes", tally.successes);
    MITHRA_COUNT("core.calibration.invocations_approximated", tally.accel);
    MITHRA_COUNT("core.calibration.invocations_measured", tally.total);

    CalibrationMeasurement out;
    out.successBound = stats::clopperPearsonLower(
        tally.successes, tally.trials, spec.confidence);
    out.invocationRate = tally.total
        ? static_cast<double>(tally.accel)
            / static_cast<double>(tally.total)
        : 0.0;
    return out;
}

/** Sub-problem holding only the even-indexed (training) entries. */
ThresholdProblem
trainingHalf(const ThresholdProblem &problem)
{
    ThresholdProblem half;
    half.benchmark = problem.benchmark;
    for (std::size_t e = 0; e < problem.entries.size(); e += 2)
        half.entries.push_back(problem.entries[e]);
    return half;
}

} // namespace

namespace
{

/**
 * Closed-loop calibration: train on the even-indexed compile sets,
 * measure the classifier-in-the-loop success bound on the odd half,
 * and tighten the labeling threshold while the bound misses the
 * contract. Deploys the first (loosest-label) round that meets it,
 * or the most conservative round when none does.
 */
template <typename ClassifierType, typename TrainFn>
CalibratedClassifier<ClassifierType>
calibrateLoop(const PipelineOptions &options,
              const CompiledWorkload &workload, const QualitySpec &spec,
              double tunedThreshold, TrainFn trainOne)
{
    MITHRA_SPAN("core.pipeline.calibration");
    const ThresholdProblem trainProblem = trainingHalf(workload.problem);
    CalibratedClassifier<ClassifierType> out;
    double th = tunedThreshold;

    for (std::size_t round = 0; round <= options.maxCalibrationRounds;
         ++round) {
        MITHRA_COUNT("core.calibration.rounds", 1);
        const TrainingData data = buildTrainingData(
            trainProblem, th, options.classifierTuples, options.seed);
        auto candidate = trainOne(data, round);
        const auto measured = calibrationMeasure(workload, *candidate,
                                                 spec);
        inform("tune[", workload.benchmark->name(), "]: ",
               candidate->kind(), " labels@", th, " -> bound ",
               measured.successBound, ", rate ",
               measured.invocationRate);
        if (measured.successBound >= spec.successRate) {
            out.labelThreshold = th;
            out.classifier = std::move(candidate);
            return out;
        }
        th *= options.labelTighten;
    }

    // No round met the contract: deploy the tightest round
    // (maximally conservative labels).
    out.labelThreshold = th / options.labelTighten;
    const TrainingData data = buildTrainingData(
        trainProblem, out.labelThreshold, options.classifierTuples,
        options.seed);
    out.classifier = trainOne(data, options.maxCalibrationRounds);
    const auto conservative = calibrationMeasure(workload,
                                                 *out.classifier, spec);
    if (conservative.successBound >= spec.successRate) {
        warn("tune[", workload.benchmark->name(), "]: ",
             out.classifier->kind(),
             " classifier deployed with maximally conservative labels");
    } else {
        // Fail closed: the compiler refuses to deploy approximation it
        // cannot certify; every invocation runs precisely.
        out.classifier->disableApproximation();
        warn("tune[", workload.benchmark->name(), "]: ",
             out.classifier->kind(),
             " classifier could not certify the contract; "
             "approximation disabled (fail closed)");
    }
    return out;
}

} // namespace

CalibratedClassifier<TableClassifier>
Pipeline::tuneTable(const CompiledWorkload &workload,
                    const QualitySpec &spec,
                    const ThresholdResult &threshold,
                    const TableClassifierOptions &tableOptions) const
{
    TableClassifierOptions tableOpts = tableOptions;
    if (tableOpts.quantizerBits == 0)
        tableOpts.quantizerBits = workload.benchmark->tableQuantizerBits();

    return calibrateLoop<TableClassifier>(
        pipelineOptions, workload, spec, threshold.threshold,
        [&](const TrainingData &data, std::size_t) {
            return std::make_unique<TableClassifier>(
                TableClassifier::train(data, tableOpts));
        });
}

CalibratedClassifier<NeuralClassifier>
Pipeline::tuneNeural(const CompiledWorkload &workload,
                     const QualitySpec &spec,
                     const ThresholdResult &threshold,
                     const NeuralClassifierOptions &neuralOptions) const
{
    NeuralClassifierOptions neuralOpts = neuralOptions;
    neuralOpts.npuParams = pipelineOptions.npuParams;

    std::size_t selectedHidden = 0;
    return calibrateLoop<NeuralClassifier>(
        pipelineOptions, workload, spec, threshold.threshold,
        [&](const TrainingData &data, std::size_t round) {
            // Bimodal error distributions make the label threshold an
            // all-or-nothing knob; ramp the class-weight bias as the
            // smoother second knob. Topology selection runs once; the
            // later, more conservative rounds reuse the winner.
            NeuralClassifierOptions opts = neuralOpts;
            opts.preciseOversample =
                1.0 + 0.8 * static_cast<double>(round);
            opts.forcedHidden = selectedHidden;
            auto classifier = std::make_unique<NeuralClassifier>(
                NeuralClassifier::train(data, opts));
            selectedHidden = classifier->topology()[1];
            return classifier;
        });
}

QualityPackage
Pipeline::tune(const CompiledWorkload &workload, const QualitySpec &spec,
               const TableClassifierOptions &tableOptions,
               const NeuralClassifierOptions &neuralOptions) const
{
    QualityPackage package;
    package.spec = spec;
    package.threshold = tuneThreshold(workload, spec);
    inform("tune[", workload.benchmark->name(), "]: q<=",
           spec.maxQualityLossPct, "% -> th=", package.threshold.threshold,
           " (bound ", package.threshold.successLowerBound, ", rate ",
           package.threshold.invocationRate, ")");

    auto table = tuneTable(workload, spec, package.threshold,
                           tableOptions);
    package.table = std::move(table.classifier);
    package.tableLabelThreshold = table.labelThreshold;

    auto neural = tuneNeural(workload, spec, package.threshold,
                             neuralOptions);
    package.neural = std::move(neural.classifier);
    package.neuralLabelThreshold = neural.labelThreshold;
    return package;
}

} // namespace mithra::core
