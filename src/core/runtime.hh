/**
 * @file
 * The MITHRA runtime (paper Figure 2, right half) and the evaluation
 * harness that measures a classifier on unseen validation datasets.
 *
 * Per invocation the runtime feeds the accelerator inputs to the
 * classifier (they stream into both the classifier and the NPU FIFOs),
 * takes the special branch to the precise function when the classifier
 * says so, and sporadically samples the true accelerator error to
 * update table-based designs online.
 *
 * The evaluator reports everything the paper's figures need: final
 * quality loss per dataset with Clopper–Pearson bounds, accelerator
 * invocation rate, speedup / energy reduction / EDP against the
 * precise baseline, and false positives/negatives against the oracle.
 *
 * The decision loop itself is sharded and batch-first (core/shard.hh):
 * each dataset's invocation stream splits into MITHRA_SHARDS
 * deterministic contiguous shards that decide via
 * Classifier::decideBatch() and run concurrently, with slot-ordered
 * evidence merging. See DESIGN.md §12 for the determinism contract.
 */

#pragma once

#include <memory>
#include <vector>

#include "core/classifier.hh"
#include "core/pipeline.hh"
#include "core/shard.hh"
#include "core/watchdog/watchdog.hh"

namespace mithra::core
{

/** One unseen dataset prepared for evaluation. */
struct ValidationEntry
{
    std::unique_ptr<axbench::Dataset> dataset;
    std::unique_ptr<axbench::InvocationTrace> trace;
    axbench::FinalOutput preciseFinal;
};

/** The unseen validation suite for one workload. */
struct ValidationSet
{
    std::vector<ValidationEntry> entries;

    std::size_t totalInvocations() const;
};

/**
 * Generate `count` unseen datasets (disjoint seed space from the
 * compile sets), trace them and attach the accelerator outputs.
 * count == 0 uses the paper's 250 (scaled).
 */
ValidationSet makeValidationSet(const CompiledWorkload &workload,
                                std::size_t count = 0);

/**
 * Build an invocation trace for externally supplied input rows (the
 * service's `/invoke` path, DESIGN.md §14): per row the benchmark's
 * pointwise target function supplies the precise output, then the
 * workload's trained accelerator attaches its approximate outputs.
 * `rows` holds `count` row-major rows of `width` floats; `width` must
 * equal the accelerator FIFO width (the NPU topology's input width).
 * Deterministic: a pure function of (workload, rows) at any
 * MITHRA_THREADS.
 */
axbench::InvocationTrace traceFromInputs(const CompiledWorkload &workload,
                                         const float *rows,
                                         std::size_t width,
                                         std::size_t count);

/** Evaluation knobs. */
struct EvaluationOptions
{
    /** Fraction of invocations whose true error is sampled online. */
    double onlineSampleRate = 0.01;
    std::uint64_t seed = 0xe7a1;
    /**
     * Shards each dataset's invocation stream is split into; 0 means
     * defaultShardCount() (the MITHRA_SHARDS environment variable,
     * falling back to the parallel substrate's thread count). With the
     * watchdog off the result is bitwise identical for any value; with
     * the watchdog on the shard count is semantic configuration (each
     * shard owns an independently seeded watchdog) and joins the
     * experiment cache key.
     */
    std::size_t shards = 0;
    /** Invocations per decideBatch() block inside a shard. */
    std::size_t batchBlock = 512;
    /**
     * Runtime guarantee watchdog (disabled by default, in which case
     * evaluation is bit-for-bit identical to a watchdog-less build).
     * Audits are charged to the cost model: an audited accelerated
     * invocation also pays for a precise run, and a DEGRADED shadow
     * audit also pays for an accelerator run.
     */
    watchdog::WatchdogOptions watchdog{};
};

/** Everything measured for one (classifier, quality spec) pair. */
struct DesignEvaluation
{
    std::string kind;
    /** Mean final quality loss over the validation sets (percent). */
    double meanQualityLoss = 0.0;
    /** 99th-percentile quality loss (tail behaviour). */
    double p99QualityLoss = 0.0;
    /** Datasets within the quality target. */
    std::size_t successes = 0;
    std::size_t trials = 0;
    /** Clopper–Pearson lower bound at the spec's confidence. */
    double successLowerBound = 0.0;
    /** Fraction of invocations delegated to the accelerator. */
    double invocationRate = 0.0;
    /** Geometric aggregates versus the precise baseline. */
    double speedup = 1.0;
    double energyReduction = 1.0;
    double edpImprovement = 1.0;
    /** False decisions versus the oracle (fractions of invocations). */
    double falsePositiveRate = 0.0;
    double falseNegativeRate = 0.0;
    /** Raw totals (summed over the validation sets). */
    sim::RunTotals totals{};
    sim::RunTotals baselineTotals{};
    /**
     * Watchdog state at the end of the run. Deliberately NOT part of
     * the experiment cache serialization (the cache format predates
     * the watchdog and cached records are watchdog-less evaluations);
     * valid only when watchdogEnabled.
     */
    bool watchdogEnabled = false;
    watchdog::Snapshot watchdog{};
    /**
     * The sharded engine's report: per-shard tallies and, with the
     * watchdog on, the merged evidence (envelope intersection at the
     * split alpha). Like the watchdog snapshot, NOT part of the
     * experiment cache serialization.
     */
    ShardedEvaluation sharded{};
};

/** Measures classifiers over a validation set. */
class Evaluator
{
  public:
    /**
     * @param workload  the compiled workload (profile, accel, costs)
     * @param spec      the quality contract being validated
     * @param threshold the tuned knob (defines the oracle's decisions)
     */
    Evaluator(const CompiledWorkload &workload, const QualitySpec &spec,
              double threshold,
              const EvaluationOptions &options = EvaluationOptions{});

    /** Run one classifier over the validation set. */
    DesignEvaluation evaluate(Classifier &classifier,
                              const ValidationSet &validation) const;

    /** Shortcut: evaluate the oracle at the tuned threshold. */
    DesignEvaluation evaluateOracle(const ValidationSet &validation) const;

    /**
     * Shortcut: evaluate random filtering that runs the same fraction
     * of invocations precisely as the given design did.
     */
    DesignEvaluation evaluateRandom(const ValidationSet &validation,
                                    double preciseFraction) const;

    /** The always-approximate design (no quality control). */
    DesignEvaluation evaluateFullApprox(
        const ValidationSet &validation) const;

  private:
    const CompiledWorkload &workload;
    QualitySpec spec;
    double threshold;
    EvaluationOptions options;
    sim::SystemSimulator systemSim;
};

} // namespace mithra::core

