/**
 * @file
 * Shared experiment driver for the benchmark harness.
 *
 * Every bench/ binary regenerates one of the paper's tables or
 * figures; most of them need the same expensive grid of evaluations
 * (compile a workload, tune the knob, train classifiers, validate on
 * unseen datasets). The ExperimentRunner compiles each workload once
 * per process and memoizes every evaluation in a TSV result cache on
 * disk, so running all bench binaries back to back costs roughly one
 * grid computation.
 *
 * Cache location: $MITHRA_CACHE, defaulting to ".mithra-cache.tsv" in
 * the working directory. Delete the file to force recomputation. Keys
 * include the experiment scale and dataset counts, so cached results
 * are never mixed across scales.
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "core/runtime.hh"

namespace mithra::core
{

/** The designs the paper compares. */
enum class Design
{
    FullApprox,
    Oracle,
    Table,
    Neural,
    Random,
};

std::string designName(Design design);

/** One cached evaluation row. */
struct ExperimentRecord
{
    DesignEvaluation eval;
    /** Tuned accelerator-error threshold behind this evaluation. */
    double threshold = 0.0;
    /** Compressed table size (table design only). */
    double compressedBytes = 0.0;
    /** Selected neural topology (neural design only). */
    std::string topology;
};

/** Workload-level facts for Table I / Table II / Figure 1. */
struct WorkloadRecord
{
    std::string domain;
    std::string metricName;
    std::string npuTopology;
    double fullApproxLossMean = 0.0;
    double npuTrainMse = 0.0;
    double preciseCyclesPerInvocation = 0.0;
    double accelCyclesPerInvocation = 0.0;
    std::size_t invocationsPerDataset = 0;
};

/**
 * A flat string-keyed TSV store.
 *
 * Concurrent-writer safe at row granularity: every append happens as
 * one whole-line write under an advisory `flock`, so two processes (or
 * the parallel exact-evaluation fan-out in two bench binaries) sharing
 * $MITHRA_CACHE interleave complete rows instead of tearing them.
 * refresh() merges rows another writer appended since this instance
 * last read the file; the in-memory value wins on key conflicts
 * (evaluations are deterministic, so conflicting rows are identical in
 * practice).
 */
class ResultCache
{
  public:
    explicit ResultCache(const std::string &path);

    std::optional<std::string> get(const std::string &key) const;
    void put(const std::string &key, const std::string &value);

    /**
     * Re-read the backing file and adopt rows this instance has not
     * seen yet. Returns the number of adopted rows.
     */
    std::size_t refresh();

    const std::string &path() const { return filePath; }

  private:
    void load();
    void append(const std::string &key, const std::string &value);

    std::string filePath;
    std::map<std::string, std::string> entries;
};

/** Per-run experiment knobs beyond the quality spec. */
struct RunOptions
{
    /** Table geometry (Figure 11 sweeps this). */
    hw::TableGeometry geometry{};
    /** Table quantizer bits override (0 = benchmark hint). */
    unsigned quantizerBits = 0;
    /** Online table updates on/off (ablation). */
    bool onlineUpdates = true;
    /**
     * Train the table once at the tuned threshold instead of running
     * the closed-loop calibration (Figure 11's geometry sweep measures
     * capacity vs invocation rate, not contract certification).
     */
    bool skipCalibration = false;
    /** Random design: fraction run precisely. */
    double randomPreciseFraction = 0.0;

    /** True when every field still has its default value. */
    bool isDefault() const;
};

/** Compiles workloads lazily and memoizes evaluations. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(
        const PipelineOptions &options = PipelineOptions{});

    /** Evaluate one (benchmark, contract, design) cell. */
    ExperimentRecord run(const std::string &benchmark,
                         const QualitySpec &spec, Design design,
                         const RunOptions &options = RunOptions{});

    /** True when the cell is already memoized in the result cache. */
    bool isCached(const std::string &benchmark, const QualitySpec &spec,
                  Design design,
                  const RunOptions &options = RunOptions{}) const;

    /**
     * Evaluate one (benchmark, contract, design) cell across many run
     * options at once. Cached cells are served from the result cache;
     * Table cells with skipCalibration set share one training-data
     * build and fan their train+evaluate work out across the thread
     * pool, each candidate into its own slot, with the new cache rows
     * appended serially in candidate order afterwards. Everything else
     * falls back to serial run() calls. Records (and the cache file)
     * are bitwise identical to per-candidate run() calls at any
     * MITHRA_THREADS.
     */
    std::vector<ExperimentRecord>
    runMany(const std::string &benchmark, const QualitySpec &spec,
            Design design, const std::vector<RunOptions> &optionsList);

    /**
     * Compile and validate the given benchmarks concurrently across
     * the thread pool before the (single-threaded) evaluation loop
     * asks for them. Already loaded benchmarks are skipped; each
     * workload is identical to what a lazy loaded() call builds.
     */
    void prefetch(const std::vector<std::string> &benchmarks);

    /**
     * Cache-aware variant for the harness binaries: compile only the
     * benchmarks that still have at least one uncached
     * (spec, design) cell, so warm-cache runs stay free while cold
     * runs overlap all the compiles.
     */
    void prefetch(const std::vector<std::string> &benchmarks,
                  const std::vector<QualitySpec> &specs,
                  const std::vector<Design> &designs,
                  const RunOptions &options = RunOptions{});

    /** Like the cache-aware prefetch, but for workloadFacts() users. */
    void prefetchFacts(const std::vector<std::string> &benchmarks);

    /** Workload-level facts (compiles on first use). */
    WorkloadRecord workloadFacts(const std::string &benchmark);

    /**
     * Per-element final error samples under full approximation over
     * the validation sets (Figure 1). Not cached on disk (bulk data);
     * requires the compiled workload.
     */
    std::vector<double> elementErrorSample(const std::string &benchmark,
                                           std::size_t maxSamples);

    /** Access the lazily compiled workload (tests/diagnostics). */
    const CompiledWorkload &workload(const std::string &benchmark);

    /**
     * The tuned quality package for one (benchmark, spec) pair,
     * compiling and tuning on first use. Harnesses that drive the
     * runtime directly (the watchdog drills) read the tuned threshold
     * and trained classifiers from here instead of re-deriving them.
     */
    QualityPackage &qualityPackage(const std::string &benchmark,
                                   const QualitySpec &spec);

    /**
     * The calibrated default-geometry table classifier for one
     * (benchmark, spec) pair, training it on first use. run() only
     * fills the package's classifier on a cache miss; harnesses that
     * need the classifier itself (not the cached evaluation) call
     * this.
     */
    TableClassifier &tunedTableClassifier(const std::string &benchmark,
                                          const QualitySpec &spec);

    const PipelineOptions &pipelineOptions() const
    {
        return pipeline.options();
    }

  private:
    struct LoadedWorkload
    {
        CompiledWorkload workload;
        ValidationSet validation;
        /** Tuned packages per quality-spec key. */
        std::map<std::string, QualityPackage> packages;
    };

    LoadedWorkload &loaded(const std::string &benchmark);
    QualityPackage &package(LoadedWorkload &entry,
                            const QualitySpec &spec);
    std::string specKey(const QualitySpec &spec) const;
    std::string factsKey(const std::string &benchmark) const;
    std::string cacheKey(const std::string &benchmark,
                         const QualitySpec &spec, Design design,
                         const RunOptions &options) const;

    Pipeline pipeline;
    ResultCache cache;
    std::map<std::string, LoadedWorkload> workloads;
};

} // namespace mithra::core

