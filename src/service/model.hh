/**
 * @file
 * Loaded models and the certified batch-invoke engine of the MITHRA
 * service (DESIGN.md §14).
 *
 * A Model is what a completed compile/train job publishes: the
 * compiled workload (benchmark + trained accelerator), the calibrated
 * classifier, the tuned threshold, and the runtime guarantee state —
 * one watchdog per shard, persistent across `/invoke` batches so the
 * sequential envelope keeps accumulating evidence over the model's
 * whole served stream.
 *
 * Determinism: the shard count is pinned in the model configuration
 * (it ships in the job spec) and never read from MITHRA_SHARDS — so
 * the decision sequence and every certificate are a pure function of
 * the request sequence, bitwise identical at any MITHRA_THREADS and
 * any MITHRA_SHARDS setting of the serving process. The serial
 * accounting inside runShardedDecisions consumes each shard's
 * subsequence in order, exactly as in offline evaluation.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "core/runtime.hh"
#include "core/shard.hh"
#include "core/watchdog/watchdog.hh"
#include "telemetry/json.hh"

namespace mithra::service
{

/** Per-model runtime configuration, fixed at job submission. */
struct ModelConfig
{
    /** Classifier design: "table" or "neural". */
    std::string design = "table";
    /** Decision-loop shards; semantic configuration (see above). */
    std::size_t shards = 4;
    /** The quality contract the job certified against. */
    core::QualitySpec spec{};
    /** Watchdog knobs; `enabled` defaults on for served models. */
    core::watchdog::WatchdogOptions watchdog{};

    ModelConfig() { watchdog.enabled = true; }
};

/** One `/invoke` batch's results. */
struct InvokeOutcome
{
    /** Per-invocation route decision, 1 = accelerate. */
    std::vector<std::uint8_t> decisions;
    /** The batch's quality certificate (see DESIGN.md §14). */
    telemetry::Json certificate;
};

/** A published model serving certified batch invocations. */
class Model
{
  public:
    Model(std::string modelId, core::CompiledWorkload compiled,
          std::unique_ptr<core::Classifier> decider,
          core::ThresholdResult tunedThreshold,
          const ModelConfig &modelConfig);

    const std::string &id() const { return name; }
    const std::string &benchmark() const { return benchmarkName; }
    const ModelConfig &config() const { return configuration; }
    std::size_t inputWidth() const { return width; }

    /**
     * Decide one batch of `count` row-major input rows of
     * inputWidth() floats each: ground-truth + accelerator outputs
     * via core::traceFromInputs, decisions via runShardedDecisions on
     * the persistent per-shard watchdogs, certificate via
     * mergeShardEvidence. Serializes concurrent callers — the
     * watchdog evidence stream is strictly ordered.
     */
    InvokeOutcome invoke(const float *rows, std::size_t count);

    /** The `GET /models/<id>` document: config + lifetime totals +
     *  current watchdog evidence. */
    telemetry::Json describe() const;

  private:
    telemetry::Json watchdogEvidenceLocked() const;

    mutable std::mutex mutex;
    std::string name;
    std::string benchmarkName;
    core::CompiledWorkload workload;
    std::unique_ptr<core::Classifier> classifier;
    core::ThresholdResult threshold;
    ModelConfig configuration;
    std::size_t width = 0;
    /** One per shard; empty when the watchdog is disabled. */
    std::vector<core::watchdog::Watchdog> dogs;

    /** Lifetime totals over every served batch. */
    std::uint64_t streamPosition = 0;
    std::size_t batches = 0;
    std::size_t totalInvocations = 0;
    std::size_t totalAccelerated = 0;
    std::size_t totalFalsePositives = 0;
    std::size_t totalFalseNegatives = 0;
};

/** Thread-safe id -> model map shared by jobs and the router. */
class ModelRegistry
{
  public:
    void add(std::shared_ptr<Model> model);
    std::shared_ptr<Model> find(const std::string &id) const;
    /** All models in id order. */
    std::vector<std::shared_ptr<Model>> list() const;

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::shared_ptr<Model>> models;
};

} // namespace mithra::service
