#include "service/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mithra::service
{

HttpClient::HttpClient(std::uint16_t clientPort) : port(clientPort) {}

HttpClient::~HttpClient()
{
    disconnect();
}

void
HttpClient::disconnect()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
HttpClient::ensureConnected(std::string &error)
{
    if (fd >= 0)
        return true;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&address),
                  sizeof(address))
        != 0) {
        error = std::string("connect(127.0.0.1:")
            + std::to_string(port) + "): " + std::strerror(errno);
        disconnect();
        return false;
    }
    return true;
}

ClientResult
HttpClient::get(const std::string &target)
{
    return exchange("GET " + target
                    + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

ClientResult
HttpClient::post(const std::string &target, const std::string &body)
{
    return exchange("POST " + target
                    + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                      "Content-Type: application/json\r\n"
                      "Content-Length: "
                    + std::to_string(body.size()) + "\r\n\r\n" + body);
}

ClientResult
HttpClient::exchange(const std::string &request)
{
    bool retryable = false;
    ClientResult result = attempt(request, retryable);
    if (!result.ok && retryable) {
        // The keep-alive connection died between requests (server
        // timeout, restart); one fresh connection settles it.
        disconnect();
        result = attempt(request, retryable);
    }
    return result;
}

ClientResult
HttpClient::attempt(const std::string &request, bool &retryable)
{
    ClientResult result;
    // A reused keep-alive connection may have been closed by the
    // server's idle timeout; send() into the dead socket can still
    // "succeed" into the kernel buffer, so the request stays
    // retryable until the first response byte proves the server took
    // it. Fresh connections never retry.
    retryable = fd >= 0;
    if (!ensureConnected(result.error))
        return result;

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t wrote =
            ::send(fd, request.data() + sent, request.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            result.error =
                std::string("send(): ") + std::strerror(errno);
            disconnect();
            return result;
        }
        sent += static_cast<std::size_t>(wrote);
    }

    // Responses from mithra-serve are always "HTTP/1.1 <status>
    // <text>", headers, then a Content-Length body — no chunking —
    // so a by-hand parse is enough here.
    std::string buffer;
    char chunk[16384];
    std::size_t headerEnd = std::string::npos;
    std::size_t bodyNeeded = 0;
    for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            result.error =
                std::string("recv(): ") + std::strerror(errno);
            disconnect();
            return result;
        }
        if (got == 0) {
            result.error = "connection closed mid-response";
            disconnect();
            return result;
        }
        retryable = false;
        buffer.append(chunk, static_cast<std::size_t>(got));
        if (headerEnd == std::string::npos) {
            headerEnd = buffer.find("\r\n\r\n");
            if (headerEnd == std::string::npos)
                continue;
            const std::string head = buffer.substr(0, headerEnd);
            if (head.rfind("HTTP/1.", 0) != 0
                || head.size() < std::strlen("HTTP/1.1 200")) {
                result.error = "malformed status line";
                disconnect();
                return result;
            }
            result.status = std::atoi(head.c_str() + 9);
            const std::size_t lengthAt =
                head.find("content-length:") != std::string::npos
                    ? head.find("content-length:")
                    : head.find("Content-Length:");
            if (lengthAt != std::string::npos)
                bodyNeeded = static_cast<std::size_t>(std::atol(
                    head.c_str() + lengthAt
                    + std::strlen("Content-Length:")));
        }
        if (headerEnd != std::string::npos
            && buffer.size() >= headerEnd + 4 + bodyNeeded)
            break;
    }
    result.body = buffer.substr(headerEnd + 4, bodyNeeded);
    result.ok = true;
    return result;
}

} // namespace mithra::service
