/**
 * @file
 * Async compile/train jobs of the MITHRA service (DESIGN.md §14).
 *
 * `POST /jobs` enqueues a JobSpec; a single worker thread drains the
 * queue in submission order through the offline pipeline (compile →
 * tune threshold → calibrate classifier) and publishes the result as
 * a Model in the shared registry under the job's id. The queue is
 * bounded: submit() refuses when `queueDepth` jobs are already
 * waiting, which the router surfaces as 429 backpressure.
 *
 * Job state machine (one-way):
 *
 *     QUEUED --> RUNNING --> DONE
 *                       \--> FAILED
 *
 * The compile work itself is the deterministic offline pipeline — the
 * only nondeterminism is *when* a job runs, never what it produces:
 * two servers given the same job specs publish bitwise-identical
 * models.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dse/explorer.hh"
#include "service/model.hh"
#include "telemetry/json.hh"

namespace mithra::service
{

enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
};

/** "queued", "running", "done", "failed". */
const char *jobStateName(JobState state);

/** Everything `POST /jobs` may configure. */
struct JobSpec
{
    /**
     * What the worker does: "compile" (the default) runs the offline
     * pipeline and publishes a Model; "dse" runs the surrogate-guided
     * design-space explorer (DESIGN.md §15) and publishes the
     * mithra-pareto-front document as the job result.
     */
    std::string kind = "compile";
    /** Registered axbench benchmark name. */
    std::string benchmark;
    /** Candidate axes of a "dse" job (defaults: the fig11 grid). */
    dse::DseAxes axes{};
    /** Runtime configuration of the published model. */
    ModelConfig model{};
    /** Representative compile datasets; 0 = paper default (scaled). */
    std::size_t compileDatasets = 0;
    /** Samples drawn from the traces to train the NPU. */
    std::size_t npuTrainSamples = 12000;
    /** Tuples sampled for classifier training. */
    std::size_t classifierTuples = 250000;
    /** Pipeline seed (dataset generation, trainers). */
    std::uint64_t seed = 0x5eed;
};

/** Point-in-time view of one job for `GET /jobs/<id>`. */
struct JobSnapshot
{
    std::string id;
    JobState state = JobState::Queued;
    std::string benchmark;
    /** Failure description; meaningful only when state == Failed. */
    std::string error;
    /** Compile summary; meaningful only when state == Done. */
    telemetry::Json result;
};

/** Bounded async job queue + its single worker thread. */
class JobManager
{
  public:
    /**
     * @param models     registry completed jobs publish into
     * @param queueDepth max jobs waiting (not counting the running
     *                   one) before submit() refuses
     */
    JobManager(ModelRegistry &models, std::size_t queueDepth);
    ~JobManager();

    /** Spawn the worker; idempotent. */
    void start();

    /** Drain-free shutdown: the running job finishes, queued jobs
     *  stay queued; idempotent. */
    void stop();

    /**
     * Enqueue a job. Returns true and sets `idOut` ("job-<n>") on
     * acceptance; returns false when the queue is full (429).
     */
    bool submit(const JobSpec &spec, std::string &idOut);

    /** Snapshot one job; false when the id is unknown. */
    bool snapshot(const std::string &id, JobSnapshot &out) const;

    /** Snapshots of every job, in id order. */
    std::vector<JobSnapshot> list() const;

  private:
    struct Job
    {
        JobSpec spec;
        JobSnapshot snap;
    };

    void workerLoop();
    /** Runs outside the manager lock; reports via the lock. */
    void runJob(const std::string &id, const JobSpec &spec);

    ModelRegistry &registry;
    std::size_t depth;

    mutable std::mutex mutex;
    std::condition_variable wake;
    std::deque<std::string> waiting;
    std::map<std::string, Job> jobs;
    std::size_t nextOrdinal = 1;
    bool stopping = false;
    bool started = false;
    std::thread worker;
};

} // namespace mithra::service
