/**
 * @file
 * The MITHRA service shell: a dependency-free HTTP/1.1 server over
 * blocking POSIX sockets and a small worker pool (DESIGN.md §14).
 *
 * Endpoints:
 *
 *   POST /jobs         submit an async compile/train job (202/400/429)
 *   GET  /jobs         list job snapshots
 *   GET  /jobs/<id>    poll one job (state, result, error)
 *   POST /invoke       decide one batch for a published model,
 *                      returning route decisions + a quality
 *                      certificate (200/400/404/409)
 *   GET  /models       list published models
 *   GET  /models/<id>  one model's config, totals and watchdog state
 *   GET  /metrics      the telemetry registry's deterministic JSON
 *   GET  /healthz      liveness probe
 *
 * Shell-vs-core boundary: this directory is the ONLY src/ home of
 * wall-clock time, sockets and scheduling nondeterminism (enforced
 * statically by mithra-lint's no-raw-timing policy and
 * mithra-analyze's taint quarantine). Everything the endpoints
 * *compute* — decisions, certificates, metrics documents — is
 * produced by the deterministic core: a pure function of the request
 * sequence, independent of MITHRA_THREADS, MITHRA_SHARDS, worker
 * count, or timing.
 *
 * The router (handle()) is separated from the socket loop so tests
 * can drive the full API without networking. The server binds
 * loopback only — it is an experiment harness, not a hardened
 * front door.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/http.hh"
#include "service/jobs.hh"
#include "service/model.hh"

namespace mithra::service
{

/** Shell knobs; every field has a MITHRA_SERVE_* environment knob. */
struct ServerOptions
{
    /** TCP port to bind on loopback; 0 = ephemeral (see port()). */
    std::uint16_t port = 0;
    /** Connection worker threads. */
    std::size_t workers = 4;
    /** Bounded job-queue depth (429 past it). */
    std::size_t jobQueueDepth = 16;
    /** Largest accepted request body, bytes (413 past it). */
    std::size_t maxBodyBytes = 8u << 20;
    /** Per-connection read/idle timeout, milliseconds. */
    std::size_t requestTimeoutMs = 10000;

    /** Defaults overridden by MITHRA_SERVE_{PORT,WORKERS,JOB_QUEUE,
     *  MAX_BODY,TIMEOUT_MS} (README env table). */
    static ServerOptions fromEnv();
};

/** The long-running service instance. */
class Server
{
  public:
    explicit Server(const ServerOptions &serverOptions = ServerOptions{});
    ~Server();

    /** Bind, listen, spawn acceptor/workers/job worker. fatal() when
     *  the port cannot be bound. Idempotent. */
    void start();

    /** Stop accepting, drain workers, stop the job worker. */
    void stop();

    /** The bound port (the ephemeral one when options.port was 0);
     *  valid after start(). */
    std::uint16_t port() const { return boundPort; }

    ModelRegistry &models() { return registry; }
    JobManager &jobs() { return jobManager; }

    /**
     * The socket-free router: map one parsed request to a response.
     * Public so tests exercise the full API surface in-process.
     */
    HttpResponse handle(const HttpRequest &request);

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd);

    HttpResponse handleJobs(const HttpRequest &request);
    HttpResponse handleJobGet(const std::string &id);
    HttpResponse handleInvoke(const HttpRequest &request);
    HttpResponse handleModels(const std::string &id);

    ServerOptions options;
    ModelRegistry registry;
    JobManager jobManager;

    /** Atomic: stop() closes it while acceptLoop() is blocked on it. */
    std::atomic<int> listenFd{-1};
    std::uint16_t boundPort = 0;
    std::atomic<bool> running{false};
    std::thread acceptor;
    std::vector<std::thread> pool;

    std::mutex connMutex;
    std::condition_variable connReady;
    /** Accepted fds waiting for a worker; -1 is the stop sentinel. */
    std::deque<int> pending;
};

} // namespace mithra::service
