#include "service/http.hh"

#include <algorithm>
#include <cstdlib>

namespace mithra::service
{

namespace
{

/** RFC 7230 token characters (header names, methods). */
bool
isTokenChar(char c)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9'))
        return true;
    static const std::string extra = "!#$%&'*+-.^_`|~";
    return extra.find(c) != std::string::npos;
}

bool
isToken(const std::string &text)
{
    if (text.empty())
        return false;
    return std::all_of(text.begin(), text.end(), isTokenChar);
}

std::string
lowered(std::string text)
{
    for (char &c : text) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return text;
}

std::string
trimmed(const std::string &text)
{
    std::size_t first = 0;
    std::size_t last = text.size();
    while (first < last && (text[first] == ' ' || text[first] == '\t'))
        ++first;
    while (last > first
           && (text[last - 1] == ' ' || text[last - 1] == '\t'))
        --last;
    return text.substr(first, last - first);
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const HttpHeader &field : headers) {
        if (field.name == name)
            return &field.value;
    }
    return nullptr;
}

RequestParser::RequestParser(const HttpLimits &requestLimits)
    : limits(requestLimits)
{
}

RequestParser::Status
RequestParser::fail(int status, std::string reason)
{
    state = Status::Error;
    failStatus = status;
    failReason = std::move(reason);
    return state;
}

RequestParser::Status
RequestParser::feed(const char *data, std::size_t size)
{
    if (state == Status::Error)
        return state;
    buffer.append(data, size);
    if (state == Status::Complete)
        return state; // surplus buffered until next()
    return parseBuffered();
}

RequestParser::Status
RequestParser::next()
{
    if (state != Status::Complete)
        return state;
    current = HttpRequest{};
    headersDone = false;
    bodyStart = 0;
    contentLength = 0;
    state = Status::NeedMore;
    return parseBuffered();
}

RequestParser::Status
RequestParser::parseBuffered()
{
    if (!headersDone) {
        const std::size_t blockEnd = buffer.find("\r\n\r\n");
        if (blockEnd == std::string::npos) {
            if (buffer.size() > limits.maxHeaderBytes)
                return fail(431, "header block exceeds "
                                 + std::to_string(limits.maxHeaderBytes)
                                 + " bytes");
            return state;
        }
        if (blockEnd + 4 > limits.maxHeaderBytes)
            return fail(431, "header block exceeds "
                             + std::to_string(limits.maxHeaderBytes)
                             + " bytes");
        const Status parsed = parseHeaderBlock(blockEnd);
        if (parsed == Status::Error)
            return parsed;
        headersDone = true;
        bodyStart = blockEnd + 4;
    }
    if (buffer.size() < bodyStart + contentLength)
        return state;
    current.body = buffer.substr(bodyStart, contentLength);
    buffer.erase(0, bodyStart + contentLength);
    state = Status::Complete;
    return state;
}

RequestParser::Status
RequestParser::parseHeaderBlock(std::size_t blockEnd)
{
    // Split [0, blockEnd) into CRLF-delimited lines. A bare LF leaves
    // the '\n' inside a name/value and fails token validation below.
    std::vector<std::string> lines;
    std::size_t lineStart = 0;
    while (lineStart <= blockEnd) {
        std::size_t lineEnd = buffer.find("\r\n", lineStart);
        if (lineEnd == std::string::npos || lineEnd > blockEnd)
            lineEnd = blockEnd;
        lines.push_back(buffer.substr(lineStart, lineEnd - lineStart));
        lineStart = lineEnd + 2;
    }
    if (lines.empty() || lines[0].empty())
        return fail(400, "empty request line");

    // Request line: METHOD SP target SP HTTP/1.x
    const std::string &requestLine = lines[0];
    const std::size_t firstSpace = requestLine.find(' ');
    const std::size_t lastSpace = requestLine.rfind(' ');
    if (firstSpace == std::string::npos || lastSpace == firstSpace)
        return fail(400, "malformed request line `" + requestLine + "'");
    current.method = requestLine.substr(0, firstSpace);
    current.target = requestLine.substr(firstSpace + 1,
                                        lastSpace - firstSpace - 1);
    const std::string version = requestLine.substr(lastSpace + 1);
    if (!isToken(current.method))
        return fail(400, "malformed method token");
    if (current.target.empty()
        || current.target.find(' ') != std::string::npos)
        return fail(400, "malformed request target");
    if (version == "HTTP/1.1") {
        current.minorVersion = 1;
    } else if (version == "HTTP/1.0") {
        current.minorVersion = 0;
    } else if (version.rfind("HTTP/", 0) == 0) {
        return fail(505, "unsupported protocol version `" + version
                             + "'");
    } else {
        return fail(400, "malformed protocol version");
    }

    if (lines.size() - 1 > limits.maxHeaderCount)
        return fail(431, "more than "
                             + std::to_string(limits.maxHeaderCount)
                             + " header fields");

    bool sawContentLength = false;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return fail(400, "malformed header field `" + line + "'");
        const std::string name = lowered(line.substr(0, colon));
        if (!isToken(name))
            return fail(400, "malformed header name `" + name + "'");
        const std::string value = trimmed(line.substr(colon + 1));
        current.headers.push_back({name, value});

        if (name == "transfer-encoding") {
            // Chunked (or any transfer coding) is out of scope: the
            // service wants a sized body up front so the 413 limit can
            // be enforced before buffering.
            return fail(411, "Transfer-Encoding is not supported; send "
                             "a Content-Length body");
        }
        if (name == "content-length") {
            if (sawContentLength)
                return fail(400, "duplicate Content-Length");
            sawContentLength = true;
            if (value.empty()
                || !std::all_of(value.begin(), value.end(),
                                [](char c) {
                                    return c >= '0' && c <= '9';
                                }))
                return fail(400, "malformed Content-Length `" + value
                                     + "'");
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(value.c_str(), &end, 10);
            if (*end != '\0')
                return fail(400, "malformed Content-Length `" + value
                                     + "'");
            if (parsed > limits.maxBodyBytes)
                return fail(413, "body of " + value
                                     + " bytes exceeds the "
                                     + std::to_string(
                                         limits.maxBodyBytes)
                                     + "-byte limit");
            contentLength = static_cast<std::size_t>(parsed);
        }
    }

    current.keepAlive = current.minorVersion >= 1;
    if (const std::string *connection = current.header("connection")) {
        const std::string token = lowered(trimmed(*connection));
        if (token == "close")
            current.keepAlive = false;
        else if (token == "keep-alive")
            current.keepAlive = true;
    }
    return state;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 409: return "Conflict";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 505: return "HTTP Version Not Supported";
      default:  return "Unknown";
    }
}

std::string
serializeResponse(const HttpResponse &response, bool keepAlive)
{
    const bool close = response.closeConnection || !keepAlive;
    std::string out = "HTTP/1.1 " + std::to_string(response.status)
        + " " + statusText(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size())
        + "\r\n";
    out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
    out += "\r\n";
    out += response.body;
    return out;
}

} // namespace mithra::service
