#include "service/jobs.hh"

#include <exception>
#include <utility>

#include "common/contracts.hh"
#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace mithra::service
{

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:  return "queued";
      case JobState::Running: return "running";
      case JobState::Done:    return "done";
      case JobState::Failed:  return "failed";
    }
    panic("unreachable job state");
}

JobManager::JobManager(ModelRegistry &models, std::size_t queueDepth)
    : registry(models), depth(queueDepth)
{
    MITHRA_EXPECTS(depth >= 1, "job queue depth must be positive");
}

JobManager::~JobManager()
{
    stop();
}

void
JobManager::start()
{
    std::lock_guard<std::mutex> hold(mutex);
    if (started)
        return;
    started = true;
    stopping = false;
    worker = std::thread([this] { workerLoop(); });
}

void
JobManager::stop()
{
    {
        std::lock_guard<std::mutex> hold(mutex);
        if (!started)
            return;
        stopping = true;
    }
    wake.notify_all();
    worker.join();
    std::lock_guard<std::mutex> hold(mutex);
    started = false;
}

bool
JobManager::submit(const JobSpec &spec, std::string &idOut)
{
    {
        std::lock_guard<std::mutex> hold(mutex);
        if (waiting.size() >= depth) {
            MITHRA_COUNT("service.jobs_refused", 1);
            return false;
        }
        idOut = "job-" + std::to_string(nextOrdinal++);
        Job job;
        job.spec = spec;
        job.snap.id = idOut;
        job.snap.state = JobState::Queued;
        job.snap.benchmark = spec.benchmark;
        jobs.emplace(idOut, std::move(job));
        waiting.push_back(idOut);
        MITHRA_COUNT("service.jobs_submitted", 1);
    }
    wake.notify_one();
    return true;
}

bool
JobManager::snapshot(const std::string &id, JobSnapshot &out) const
{
    std::lock_guard<std::mutex> hold(mutex);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        return false;
    out = it->second.snap;
    return true;
}

std::vector<JobSnapshot>
JobManager::list() const
{
    std::lock_guard<std::mutex> hold(mutex);
    std::vector<JobSnapshot> out;
    out.reserve(jobs.size());
    for (const auto &entry : jobs)
        out.push_back(entry.second.snap);
    return out;
}

void
JobManager::workerLoop()
{
    for (;;) {
        std::string id;
        JobSpec spec;
        {
            std::unique_lock<std::mutex> hold(mutex);
            wake.wait(hold, [this] {
                return stopping || !waiting.empty();
            });
            if (stopping)
                return;
            id = waiting.front();
            waiting.pop_front();
            Job &job = jobs.at(id);
            job.snap.state = JobState::Running;
            spec = job.spec;
        }
        runJob(id, spec);
    }
}

void
JobManager::runJob(const std::string &id, const JobSpec &spec)
{
    telemetry::Json result;
    std::string error;
    try {
        core::PipelineOptions options;
        options.compileDatasetCount = spec.compileDatasets;
        options.npuTrainSamples = spec.npuTrainSamples;
        options.classifierTuples = spec.classifierTuples;
        options.seed = spec.seed;

        if (spec.kind == "dse") {
            // Design-space exploration: prune the sweep with the
            // surrogate, exactly evaluate the survivors through the
            // shared experiment cache, and publish the Pareto-front
            // document as the job result. No model is registered.
            inform("job ", id, ": exploring ", spec.benchmark, " (",
                   spec.axes.candidateCount(), " candidates)");
            core::ExperimentRunner runner(options);
            const dse::Explorer explorer;
            const dse::DseResult front = explorer.explore(
                runner, spec.benchmark, spec.model.spec, spec.axes);
            result = front.toJson();
            MITHRA_COUNT("service.jobs_dse", 1);
            inform("job ", id, ": done (",
                   front.exactEvalsSelected, "/",
                   front.candidates.size(), " exact evals, ",
                   front.front.size(), " front points)");

            std::lock_guard<std::mutex> hold(mutex);
            Job &job = jobs.at(id);
            job.snap.state = JobState::Done;
            job.snap.result = std::move(result);
            MITHRA_COUNT("service.jobs_completed", 1);
            return;
        }

        const core::Pipeline pipeline(options);

        inform("job ", id, ": compiling ", spec.benchmark);
        core::CompiledWorkload workload =
            pipeline.compile(spec.benchmark);
        const core::ThresholdResult threshold =
            pipeline.tuneThreshold(workload, spec.model.spec);

        std::unique_ptr<core::Classifier> classifier;
        if (spec.model.design == "neural") {
            classifier = pipeline
                             .tuneNeural(workload, spec.model.spec,
                                         threshold)
                             .classifier;
        } else {
            classifier = pipeline
                             .tuneTable(workload, spec.model.spec,
                                        threshold)
                             .classifier;
        }

        telemetry::Json::Object summary;
        summary.emplace("model", telemetry::Json(id));
        summary.emplace("benchmark", telemetry::Json(spec.benchmark));
        summary.emplace("design",
                        telemetry::Json(spec.model.design));
        summary.emplace("shards",
                        telemetry::Json(spec.model.shards));
        summary.emplace("threshold",
                        telemetry::Json(threshold.threshold));
        summary.emplace("successLowerBound",
                        telemetry::Json(threshold.successLowerBound));
        summary.emplace("invocationRate",
                        telemetry::Json(threshold.invocationRate));
        summary.emplace("npuTrainMse",
                        telemetry::Json(workload.npuTrainMse));
        summary.emplace("fullApproxLossMean",
                        telemetry::Json(workload.fullApproxLossMean));
        summary.emplace(
            "inputWidth",
            telemetry::Json(
                workload.benchmark->npuTopology().front()));
        summary.emplace(
            "approximationEnabled",
            telemetry::Json(classifier->approximationEnabled()));
        result = telemetry::Json(std::move(summary));

        auto model = std::make_shared<Model>(
            id, std::move(workload), std::move(classifier), threshold,
            spec.model);
        registry.add(std::move(model));
        inform("job ", id, ": done (threshold ", threshold.threshold,
               ")");
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown failure";
    }

    std::lock_guard<std::mutex> hold(mutex);
    Job &job = jobs.at(id);
    if (error.empty()) {
        job.snap.state = JobState::Done;
        job.snap.result = std::move(result);
        MITHRA_COUNT("service.jobs_completed", 1);
    } else {
        job.snap.state = JobState::Failed;
        job.snap.error = error;
        warn("job ", id, " failed: ", error);
        MITHRA_COUNT("service.jobs_failed", 1);
    }
}

} // namespace mithra::service
