/**
 * @file
 * A minimal blocking HTTP/1.1 client for the MITHRA service, used by
 * examples/service_client, bench/micro_service and tests. Keep-alive
 * over one loopback connection, reconnecting once when the server
 * closed it (timeout, error response). Not general: no TLS, no
 * redirects, no chunked bodies — exactly the subset mithra-serve
 * speaks.
 */

#pragma once

#include <cstdint>
#include <string>

namespace mithra::service
{

/** One HTTP exchange's outcome. */
struct ClientResult
{
    /** False on a transport failure (connect/send/recv); `error`
     *  says why and `status` is 0. */
    bool ok = false;
    int status = 0;
    std::string body;
    std::string error;
};

/** Blocking keep-alive client pinned to 127.0.0.1:<port>. */
class HttpClient
{
  public:
    explicit HttpClient(std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    ClientResult get(const std::string &target);
    ClientResult post(const std::string &target,
                      const std::string &body);

  private:
    ClientResult exchange(const std::string &request);
    /** One attempt over the current connection; `retryable` reports
     *  a dead keep-alive connection worth one reconnect. */
    ClientResult attempt(const std::string &request, bool &retryable);
    bool ensureConnected(std::string &error);
    void disconnect();

    std::uint16_t port;
    int fd = -1;
};

} // namespace mithra::service
