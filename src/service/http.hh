/**
 * @file
 * Minimal HTTP/1.1 request parser and response writer for the MITHRA
 * service shell (DESIGN.md §14).
 *
 * The parser is a pure incremental state machine over bytes — it
 * never touches a socket, which is what makes the edge-case tests in
 * tests/test_service.cpp possible without any networking. Feed it
 * chunks as they arrive; it reports NeedMore / Complete / Error and,
 * after a Complete, next() re-parses any buffered surplus so
 * pipelined requests on one connection just work.
 *
 * Deliberately small surface, strict limits:
 *
 *  - request line + headers capped at maxHeaderBytes (431 above),
 *  - at most maxHeaderCount header fields (431 above),
 *  - bodies sized by Content-Length only, capped at maxBodyBytes
 *    (413 above); Transfer-Encoding (chunked) is rejected with 411,
 *  - only HTTP/1.0 and HTTP/1.1 (505 otherwise),
 *  - everything else malformed is a 400.
 *
 * An Error is terminal for the connection: the server answers with
 * the parser's suggested status and closes.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mithra::service
{

/** Hard ceilings the parser enforces while bytes arrive. */
struct HttpLimits
{
    /** Request line + header block, bytes (431 above). */
    std::size_t maxHeaderBytes = 8192;
    /** Header field count (431 above). */
    std::size_t maxHeaderCount = 64;
    /** Content-Length ceiling, bytes (413 above). */
    std::size_t maxBodyBytes = 8u << 20;
};

/** One header field; `name` is stored lowercased. */
struct HttpHeader
{
    std::string name;
    std::string value;
};

/** One fully parsed request. */
struct HttpRequest
{
    std::string method; ///< e.g. "GET" (token, case preserved)
    std::string target; ///< e.g. "/jobs/job-1"
    int minorVersion = 1; ///< HTTP/1.<minorVersion>
    std::vector<HttpHeader> headers;
    std::string body;
    /** HTTP/1.1 defaults on, HTTP/1.0 off; Connection overrides. */
    bool keepAlive = true;

    /** Value of the (lowercased) header, or nullptr when absent. */
    const std::string *header(const std::string &name) const;
};

/** Incremental request parser; one instance per connection. */
class RequestParser
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete request buffered yet
        Complete, ///< request() is valid; call next() when served
        Error,    ///< protocol error; errorStatus()/errorReason()
    };

    explicit RequestParser(const HttpLimits &requestLimits = HttpLimits{});

    /** Append arriving bytes and advance the state machine. */
    Status feed(const char *data, std::size_t size);

    Status status() const { return state; }

    /** The parsed request; valid only while status() == Complete. */
    const HttpRequest &request() const { return current; }

    /**
     * Discard the served request and re-parse the buffered surplus:
     * returns Complete immediately when a full pipelined request was
     * already buffered behind the previous one.
     */
    Status next();

    /** Suggested response status (400/411/413/431/505) after Error. */
    int errorStatus() const { return failStatus; }

    /** Human-readable reason after Error. */
    const std::string &errorReason() const { return failReason; }

  private:
    Status parseBuffered();
    Status parseHeaderBlock(std::size_t blockEnd);
    Status fail(int status, std::string reason);

    HttpLimits limits;
    Status state = Status::NeedMore;
    std::string buffer;
    bool headersDone = false;
    std::size_t bodyStart = 0;
    std::size_t contentLength = 0;
    HttpRequest current;
    int failStatus = 0;
    std::string failReason;
};

/** One response about to be serialized. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Force Connection: close regardless of the request. */
    bool closeConnection = false;
};

/** Canonical reason phrase ("Not Found", ...) for the codes we emit. */
const char *statusText(int status);

/** Serialize status line + headers + body, ready for send(). */
std::string serializeResponse(const HttpResponse &response,
                              bool keepAlive);

} // namespace mithra::service
