#include "service/model.hh"

#include <utility>

#include "common/contracts.hh"
#include "stats/sequential_bound.hh"
#include "telemetry/telemetry.hh"

namespace mithra::service
{

namespace
{

using core::watchdog::Snapshot;

telemetry::Json
envelopeJson(const stats::ProportionEnvelope &envelope,
             double confidence)
{
    telemetry::Json::Object out;
    out.emplace("confidence", telemetry::Json(confidence));
    out.emplace("lower", telemetry::Json(envelope.lower));
    out.emplace("upper", telemetry::Json(envelope.upper));
    return telemetry::Json(std::move(out));
}

} // namespace

Model::Model(std::string modelId, core::CompiledWorkload compiled,
             std::unique_ptr<core::Classifier> decider,
             core::ThresholdResult tunedThreshold,
             const ModelConfig &modelConfig)
    : name(std::move(modelId)),
      workload(std::move(compiled)),
      classifier(std::move(decider)),
      threshold(tunedThreshold),
      configuration(modelConfig)
{
    MITHRA_EXPECTS(workload.benchmark != nullptr,
                   "model needs a compiled benchmark");
    MITHRA_EXPECTS(classifier != nullptr, "model needs a classifier");
    MITHRA_EXPECTS(configuration.shards >= 1,
                   "model shard count must be positive");
    benchmarkName = workload.benchmark->name();
    width = workload.benchmark->npuTopology().front();
    if (configuration.watchdog.enabled) {
        // Per-shard watchdogs at the split confidence, exactly like
        // the offline sharded evaluator: the merged envelope then
        // holds at the configured confidence by the union bound.
        const double shardConfidence = stats::splitConfidence(
            configuration.watchdog.confidence, configuration.shards);
        dogs.reserve(configuration.shards);
        for (std::size_t k = 0; k < configuration.shards; ++k) {
            core::watchdog::WatchdogOptions opts =
                configuration.watchdog;
            opts.confidence = shardConfidence;
            opts.seed =
                core::shardSeed(configuration.watchdog.seed, k);
            dogs.emplace_back(opts, threshold.threshold);
        }
    }
}

InvokeOutcome
Model::invoke(const float *rows, std::size_t count)
{
    MITHRA_EXPECTS(count > 0, "invoke batch must not be empty");
    std::lock_guard<std::mutex> hold(mutex);

    const axbench::InvocationTrace trace =
        core::traceFromInputs(workload, rows, width, count);
    classifier->beginDataset(trace);

    const core::ShardPlan plan(count, configuration.shards);
    core::DecisionLoopOptions loop;
    loop.oracleThreshold = threshold.threshold;
    loop.onlineSampleRate = 0.0; // decisions stay pure over the batch
    loop.streamOffset = streamPosition;

    std::vector<Snapshot> before(dogs.size());
    for (std::size_t k = 0; k < dogs.size(); ++k)
        before[k] = dogs[k].snapshot();

    InvokeOutcome outcome;
    outcome.decisions.resize(count);
    std::vector<core::ShardTally> tallies;
    core::runShardedDecisions(*classifier, trace, plan, dogs, loop,
                              outcome.decisions.data(), tallies);

    std::size_t batchAccelerated = 0;
    std::size_t batchFalsePositives = 0;
    std::size_t batchFalseNegatives = 0;
    for (const core::ShardTally &tally : tallies) {
        batchAccelerated += tally.accelerated;
        batchFalsePositives += tally.falsePositives;
        batchFalseNegatives += tally.falseNegatives;
    }
    std::size_t batchAudits = 0;
    std::size_t batchViolations = 0;
    std::size_t batchForcedPrecise = 0;
    for (std::size_t k = 0; k < dogs.size(); ++k) {
        const Snapshot now = dogs[k].snapshot();
        batchAudits += now.audits - before[k].audits;
        batchViolations += now.violations - before[k].violations;
        batchForcedPrecise +=
            now.forcedPrecise - before[k].forcedPrecise;
    }

    streamPosition += count;
    batches += 1;
    totalInvocations += count;
    totalAccelerated += batchAccelerated;
    totalFalsePositives += batchFalsePositives;
    totalFalseNegatives += batchFalseNegatives;

    MITHRA_COUNT("service.invocations", count);
    MITHRA_COUNT("service.accelerated", batchAccelerated);

    telemetry::Json::Object certificate;
    certificate.emplace("model", telemetry::Json(name));
    certificate.emplace("benchmark", telemetry::Json(benchmarkName));
    certificate.emplace("design",
                        telemetry::Json(configuration.design));
    certificate.emplace("shards",
                        telemetry::Json(configuration.shards));
    certificate.emplace("threshold",
                        telemetry::Json(threshold.threshold));
    certificate.emplace("watchdogEnabled",
                        telemetry::Json(!dogs.empty()));

    telemetry::Json::Object batch;
    batch.emplace("invocations", telemetry::Json(count));
    batch.emplace("accelerated", telemetry::Json(batchAccelerated));
    batch.emplace("falsePositives",
                  telemetry::Json(batchFalsePositives));
    batch.emplace("falseNegatives",
                  telemetry::Json(batchFalseNegatives));
    batch.emplace("audits", telemetry::Json(batchAudits));
    batch.emplace("violations", telemetry::Json(batchViolations));
    batch.emplace("forcedPrecise",
                  telemetry::Json(batchForcedPrecise));
    certificate.emplace("batch", telemetry::Json(std::move(batch)));

    telemetry::Json::Object total;
    total.emplace("batches", telemetry::Json(batches));
    total.emplace("invocations", telemetry::Json(totalInvocations));
    total.emplace("accelerated", telemetry::Json(totalAccelerated));
    total.emplace("falsePositives",
                  telemetry::Json(totalFalsePositives));
    total.emplace("falseNegatives",
                  telemetry::Json(totalFalseNegatives));
    certificate.emplace("total", telemetry::Json(std::move(total)));

    if (!dogs.empty())
        certificate.emplace("watchdog", watchdogEvidenceLocked());

    outcome.certificate = telemetry::Json(std::move(certificate));
    return outcome;
}

telemetry::Json
Model::watchdogEvidenceLocked() const
{
    core::ShardedEvaluation merged;
    merged.shardCount = configuration.shards;
    merged.watchdogEnabled = true;
    merged.shards.resize(dogs.size());
    core::mergeShardEvidence(dogs, configuration.watchdog.confidence,
                             merged);

    telemetry::Json::Object evidence;
    evidence.emplace(
        "state",
        telemetry::Json(core::watchdog::stateName(merged.combinedState)));
    evidence.emplace("envelope",
                     envelopeJson(merged.violationEnvelope,
                                  configuration.watchdog.confidence));
    telemetry::Json::Array perShard;
    std::size_t audits = 0;
    std::size_t violations = 0;
    for (const core::ShardReport &shard : merged.shards) {
        const Snapshot &snap = shard.watchdog;
        audits += snap.audits;
        violations += snap.violations;
        telemetry::Json::Object one;
        one.emplace("state", telemetry::Json(
                                 core::watchdog::stateName(snap.state)));
        one.emplace("invocations", telemetry::Json(snap.invocations));
        one.emplace("audits", telemetry::Json(snap.audits));
        one.emplace("violations", telemetry::Json(snap.violations));
        one.emplace("lower",
                    telemetry::Json(snap.violationLowerBound));
        one.emplace("upper",
                    telemetry::Json(snap.violationUpperBound));
        perShard.push_back(telemetry::Json(std::move(one)));
    }
    evidence.emplace("audits", telemetry::Json(audits));
    evidence.emplace("violations", telemetry::Json(violations));
    evidence.emplace("perShard",
                     telemetry::Json(std::move(perShard)));
    return telemetry::Json(std::move(evidence));
}

telemetry::Json
Model::describe() const
{
    std::lock_guard<std::mutex> hold(mutex);
    telemetry::Json::Object out;
    out.emplace("id", telemetry::Json(name));
    out.emplace("benchmark", telemetry::Json(benchmarkName));
    out.emplace("design", telemetry::Json(configuration.design));
    out.emplace("shards", telemetry::Json(configuration.shards));
    out.emplace("inputWidth", telemetry::Json(width));
    out.emplace("threshold", telemetry::Json(threshold.threshold));
    out.emplace("successLowerBound",
                telemetry::Json(threshold.successLowerBound));
    out.emplace("approximationEnabled",
                telemetry::Json(classifier->approximationEnabled()));
    out.emplace("batches", telemetry::Json(batches));
    out.emplace("invocations", telemetry::Json(totalInvocations));
    out.emplace("accelerated", telemetry::Json(totalAccelerated));
    out.emplace("watchdogEnabled", telemetry::Json(!dogs.empty()));
    if (!dogs.empty())
        out.emplace("watchdog", watchdogEvidenceLocked());
    return telemetry::Json(std::move(out));
}

void
ModelRegistry::add(std::shared_ptr<Model> model)
{
    MITHRA_EXPECTS(model != nullptr, "cannot register a null model");
    std::lock_guard<std::mutex> hold(mutex);
    models[model->id()] = std::move(model);
    MITHRA_GAUGE_SET("service.models", models.size());
}

std::shared_ptr<Model>
ModelRegistry::find(const std::string &id) const
{
    std::lock_guard<std::mutex> hold(mutex);
    const auto it = models.find(id);
    return it == models.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Model>>
ModelRegistry::list() const
{
    std::lock_guard<std::mutex> hold(mutex);
    std::vector<std::shared_ptr<Model>> out;
    out.reserve(models.size());
    for (const auto &entry : models)
        out.push_back(entry.second);
    return out;
}

} // namespace mithra::service
