#include "service/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "axbench/registry.hh"
#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/logging.hh"
#include "telemetry/run_report.hh"
#include "telemetry/telemetry.hh"

namespace mithra::service
{

namespace
{

using telemetry::Json;

HttpResponse
jsonResponse(int status, const Json &body)
{
    HttpResponse response;
    response.status = status;
    response.body = body.dump(1) + "\n";
    return response;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    Json::Object error;
    error.emplace("status", Json(static_cast<std::int64_t>(status)));
    error.emplace("error", Json(message));
    MITHRA_COUNT("service.http_errors", 1);
    return jsonResponse(status, Json(std::move(error)));
}

/** "" on success; error text otherwise. Absent keys keep `out`. */
std::string
readCount(const Json &body, const char *key, std::size_t lo,
          std::size_t hi, std::size_t &out)
{
    const Json *value = body.find(key);
    if (!value)
        return "";
    if (value->kind() != Json::Kind::Int || value->asInt() < 0)
        return std::string("`") + key
            + "' must be a non-negative integer";
    const std::size_t parsed =
        static_cast<std::size_t>(value->asInt());
    if (parsed < lo || parsed > hi)
        return std::string("`") + key + "' must be in ["
            + std::to_string(lo) + ", " + std::to_string(hi) + "]";
    out = parsed;
    return "";
}

/** "" on success; error text otherwise. Open interval (lo, hi). */
std::string
readRate(const Json &body, const char *key, double lo, double hi,
         double &out)
{
    const Json *value = body.find(key);
    if (!value)
        return "";
    if (value->kind() != Json::Kind::Double
        && value->kind() != Json::Kind::Int)
        return std::string("`") + key + "' must be a number";
    const double parsed = value->asNumber();
    if (!(parsed > lo) || !(parsed < hi))
        return std::string("`") + key + "' must be in ("
            + std::to_string(lo) + ", " + std::to_string(hi) + ")";
    out = parsed;
    return "";
}

/**
 * "" on success; error text otherwise. Absent keys keep `out`.
 * Elements must be integers in [lo, hi], ascending.
 */
std::string
readSizeArray(const Json &body, const char *key, std::size_t lo,
              std::size_t hi, std::vector<std::size_t> &out)
{
    const Json *value = body.find(key);
    if (!value)
        return "";
    if (value->kind() != Json::Kind::Array || value->asArray().empty())
        return std::string("`") + key
            + "' must be a non-empty array of integers";
    std::vector<std::size_t> parsed;
    for (const Json &entry : value->asArray()) {
        if (entry.kind() != Json::Kind::Int || entry.asInt() < 0)
            return std::string("`") + key
                + "' must hold non-negative integers";
        const std::size_t element =
            static_cast<std::size_t>(entry.asInt());
        if (element < lo || element > hi)
            return std::string("`") + key + "' elements must be in ["
                + std::to_string(lo) + ", " + std::to_string(hi) + "]";
        if (!parsed.empty() && element <= parsed.back())
            return std::string("`") + key
                + "' must be strictly ascending";
        parsed.push_back(element);
    }
    out = std::move(parsed);
    return "";
}

/** Parse + validate a POST /jobs body; "" on success. */
std::string
parseJobSpec(const Json &body, JobSpec &spec)
{
    if (body.kind() != Json::Kind::Object)
        return "job spec must be a JSON object";

    if (const Json *kind = body.find("kind")) {
        if (kind->kind() != Json::Kind::String
            || (kind->asString() != "compile"
                && kind->asString() != "dse"))
            return "`kind' must be \"compile\" or \"dse\"";
        spec.kind = kind->asString();
    }

    const Json *benchmark = body.find("benchmark");
    if (!benchmark || benchmark->kind() != Json::Kind::String)
        return "`benchmark' string is required";
    spec.benchmark = benchmark->asString();
    const std::vector<std::string> known = axbench::benchmarkNames();
    if (std::find(known.begin(), known.end(), spec.benchmark)
        == known.end()) {
        std::string names;
        for (const std::string &name : known)
            names += (names.empty() ? "" : ", ") + name;
        return "unknown benchmark `" + spec.benchmark + "' (known: "
            + names + ")";
    }

    if (const Json *design = body.find("design")) {
        if (design->kind() != Json::Kind::String
            || (design->asString() != "table"
                && design->asString() != "neural"))
            return "`design' must be \"table\" or \"neural\"";
        spec.model.design = design->asString();
    }

    std::string problem;
    if (!(problem = readCount(body, "shards", 1, 64,
                              spec.model.shards))
             .empty())
        return problem;
    if (!(problem = readRate(body, "maxQualityLossPct", 0.0, 100.0,
                             spec.model.spec.maxQualityLossPct))
             .empty())
        return problem;
    if (!(problem = readRate(body, "confidence", 0.0, 1.0,
                             spec.model.spec.confidence))
             .empty())
        return problem;
    if (!(problem = readRate(body, "successRate", 0.0, 1.0,
                             spec.model.spec.successRate))
             .empty())
        return problem;
    if (!(problem = readCount(body, "compileDatasets", 0, 100000,
                              spec.compileDatasets))
             .empty())
        return problem;
    if (!(problem = readCount(body, "npuTrainSamples", 16, 10000000,
                              spec.npuTrainSamples))
             .empty())
        return problem;
    if (!(problem = readCount(body, "classifierTuples", 16, 100000000,
                              spec.classifierTuples))
             .empty())
        return problem;
    if (const Json *seed = body.find("seed")) {
        if (seed->kind() != Json::Kind::Int)
            return "`seed' must be an integer";
        spec.seed = static_cast<std::uint64_t>(seed->asInt());
    }
    if (const Json *watchdog = body.find("watchdog")) {
        if (watchdog->kind() != Json::Kind::Bool)
            return "`watchdog' must be a boolean";
        spec.model.watchdog.enabled = watchdog->asBool();
    }
    if (!(problem = readRate(body, "watchdogRate", 0.0, 1.0,
                             spec.model.watchdog.baseAuditRate))
             .empty())
        return problem;
    if (!(problem = readRate(body, "watchdogMaxViolation", 0.0, 1.0,
                             spec.model.watchdog.maxViolationRate))
             .empty())
        return problem;

    // Candidate axes of a "dse" job; accepted (and checked) even for
    // compile jobs so a client can flip `kind` without reshaping the
    // body, but only the explorer reads them.
    if (!(problem = readSizeArray(body, "tableCounts", 1, 64,
                                  spec.axes.tableCounts))
             .empty())
        return problem;
    if (!(problem = readSizeArray(body, "tableBytes", 16, 1 << 20,
                                  spec.axes.tableBytes))
             .empty())
        return problem;
    std::vector<std::size_t> bits;
    if (!(problem = readSizeArray(body, "quantizerBits", 0, 16, bits))
             .empty())
        return problem;
    if (!bits.empty()) {
        spec.axes.quantizerBits.clear();
        for (const std::size_t b : bits)
            spec.axes.quantizerBits.push_back(
                static_cast<unsigned>(b));
    }
    return "";
}

Json
jobJson(const JobSnapshot &snap)
{
    Json::Object out;
    out.emplace("id", Json(snap.id));
    out.emplace("state", Json(jobStateName(snap.state)));
    out.emplace("benchmark", Json(snap.benchmark));
    if (snap.state == JobState::Failed)
        out.emplace("error", Json(snap.error));
    if (snap.state == JobState::Done)
        out.emplace("result", snap.result);
    return Json(std::move(out));
}

/** Write all of `data`; false on a connection error. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t wrote =
            ::send(fd, data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(wrote);
    }
    return true;
}

} // namespace

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions out;
    out.port = static_cast<std::uint16_t>(
        env::countIn("MITHRA_SERVE_PORT", 0, 65535, 0));
    out.workers = env::countIn("MITHRA_SERVE_WORKERS", 1, 256, 4);
    out.jobQueueDepth =
        env::countIn("MITHRA_SERVE_JOB_QUEUE", 1, 4096, 16);
    out.maxBodyBytes = env::countIn("MITHRA_SERVE_MAX_BODY", 1024,
                                    1073741824, 8u << 20);
    out.requestTimeoutMs = env::countIn("MITHRA_SERVE_TIMEOUT_MS", 100,
                                        600000, 10000);
    return out;
}

Server::Server(const ServerOptions &serverOptions)
    : options(serverOptions),
      jobManager(registry, serverOptions.jobQueueDepth)
{
    MITHRA_EXPECTS(options.workers >= 1,
                   "server needs at least one worker");
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (running.load())
        return;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("mithra-serve: socket(): ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(options.port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address))
        != 0)
        fatal("mithra-serve: cannot bind 127.0.0.1:", options.port,
              ": ", std::strerror(errno));
    if (::listen(fd, 64) != 0)
        fatal("mithra-serve: listen(): ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &length)
        != 0)
        fatal("mithra-serve: getsockname(): ", std::strerror(errno));
    boundPort = ntohs(bound.sin_port);
    listenFd.store(fd);

    running.store(true);
    jobManager.start();
    acceptor = std::thread([this] { acceptLoop(); });
    pool.reserve(options.workers);
    for (std::size_t i = 0; i < options.workers; ++i)
        pool.emplace_back([this] { workerLoop(); });
    inform("mithra-serve: listening on 127.0.0.1:", boundPort, " (",
           options.workers, " workers)");
}

void
Server::stop()
{
    if (!running.exchange(false))
        return;
    // Unblock accept() by tearing the listening socket down.
    const int fd = listenFd.exchange(-1);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    acceptor.join();
    {
        std::lock_guard<std::mutex> hold(connMutex);
        for (std::size_t i = 0; i < pool.size(); ++i)
            pending.push_back(-1);
    }
    connReady.notify_all();
    for (std::thread &worker : pool)
        worker.join();
    pool.clear();
    {
        std::lock_guard<std::mutex> hold(connMutex);
        for (const int fd : pending) {
            if (fd >= 0)
                ::close(fd);
        }
        pending.clear();
    }
    jobManager.stop();
}

void
Server::acceptLoop()
{
    while (running.load()) {
        const int listener = listenFd.load();
        if (listener < 0)
            return;
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // stop() tore the socket down
        }
        {
            std::lock_guard<std::mutex> hold(connMutex);
            pending.push_back(fd);
        }
        connReady.notify_one();
    }
}

void
Server::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> hold(connMutex);
            connReady.wait(hold, [this] { return !pending.empty(); });
            fd = pending.front();
            pending.pop_front();
        }
        if (fd < 0)
            return;
        serveConnection(fd);
    }
}

void
Server::serveConnection(int fd)
{
    HttpLimits limits;
    limits.maxBodyBytes = options.maxBodyBytes;
    RequestParser parser(limits);
    char buffer[16384];
    std::size_t unservedBytes = 0;

    for (;;) {
        pollfd waiter{};
        waiter.fd = fd;
        waiter.events = POLLIN;
        const int ready =
            ::poll(&waiter, 1,
                   static_cast<int>(options.requestTimeoutMs));
        if (ready == 0) {
            // Idle keep-alive connections just close; a half-sent
            // request gets told why.
            if (unservedBytes > 0)
                sendAll(fd,
                        serializeResponse(
                            errorResponse(408, "request timed out"),
                            false));
            break;
        }
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got <= 0) {
            if (got < 0 && errno == EINTR)
                continue;
            break; // peer closed or connection error
        }
        unservedBytes += static_cast<std::size_t>(got);
        RequestParser::Status status =
            parser.feed(buffer, static_cast<std::size_t>(got));
        bool open = true;
        while (status == RequestParser::Status::Complete) {
            const HttpRequest &request = parser.request();
            const HttpResponse response = handle(request);
            const bool keep =
                request.keepAlive && !response.closeConnection;
            if (!sendAll(fd, serializeResponse(response, keep))
                || !keep) {
                open = false;
                break;
            }
            unservedBytes = 0;
            status = parser.next();
        }
        if (!open)
            break;
        if (status == RequestParser::Status::Error) {
            sendAll(fd,
                    serializeResponse(
                        errorResponse(parser.errorStatus(),
                                      parser.errorReason()),
                        false));
            break;
        }
    }
    ::close(fd);
}

HttpResponse
Server::handle(const HttpRequest &request)
{
    MITHRA_COUNT("service.requests", 1);
    const std::string &target = request.target;

    if (target == "/jobs" || target.rfind("/jobs/", 0) == 0) {
        if (request.method == "POST" && target == "/jobs")
            return handleJobs(request);
        if (request.method == "GET") {
            if (target == "/jobs") {
                Json::Array all;
                for (const JobSnapshot &snap : jobManager.list())
                    all.push_back(jobJson(snap));
                Json::Object out;
                out.emplace("jobs", Json(std::move(all)));
                return jsonResponse(200, Json(std::move(out)));
            }
            return handleJobGet(target.substr(6));
        }
        return errorResponse(405, "use POST /jobs or GET /jobs[/<id>]");
    }

    if (target == "/invoke") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /invoke");
        return handleInvoke(request);
    }

    if (target == "/models" || target.rfind("/models/", 0) == 0) {
        if (request.method != "GET")
            return errorResponse(405, "use GET /models[/<id>]");
        return handleModels(target == "/models" ? ""
                                                : target.substr(8));
    }

    if (target == "/metrics") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /metrics");
        return jsonResponse(200, telemetry::metricsDocument());
    }

    if (target == "/healthz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /healthz");
        Json::Object out;
        out.emplace("status", Json("ok"));
        return jsonResponse(200, Json(std::move(out)));
    }

    return errorResponse(404, "no such resource `" + target + "'");
}

HttpResponse
Server::handleJobs(const HttpRequest &request)
{
    const telemetry::ParseResult parsed =
        telemetry::parseJson(request.body);
    if (!parsed.ok)
        return errorResponse(400, "invalid JSON body: " + parsed.error);
    JobSpec spec;
    const std::string problem = parseJobSpec(parsed.value, spec);
    if (!problem.empty())
        return errorResponse(400, problem);

    std::string id;
    if (!jobManager.submit(spec, id))
        return errorResponse(429, "job queue is full; retry later");
    Json::Object out;
    out.emplace("id", Json(id));
    out.emplace("state", Json("queued"));
    return jsonResponse(202, Json(std::move(out)));
}

HttpResponse
Server::handleJobGet(const std::string &id)
{
    JobSnapshot snap;
    if (!jobManager.snapshot(id, snap))
        return errorResponse(404, "no such job `" + id + "'");
    return jsonResponse(200, jobJson(snap));
}

HttpResponse
Server::handleInvoke(const HttpRequest &request)
{
    const telemetry::ParseResult parsed =
        telemetry::parseJson(request.body);
    if (!parsed.ok)
        return errorResponse(400, "invalid JSON body: " + parsed.error);
    const Json &body = parsed.value;
    if (body.kind() != Json::Kind::Object)
        return errorResponse(400, "invoke body must be a JSON object");

    const Json *modelId = body.find("model");
    if (!modelId || modelId->kind() != Json::Kind::String)
        return errorResponse(400, "`model' string is required");
    const std::shared_ptr<Model> model =
        registry.find(modelId->asString());
    if (!model) {
        JobSnapshot snap;
        if (jobManager.snapshot(modelId->asString(), snap)
            && snap.state != JobState::Failed) {
            return errorResponse(409, "model `" + modelId->asString()
                                          + "' is not ready (job is "
                                          + jobStateName(snap.state)
                                          + ")");
        }
        return errorResponse(404, "no such model `"
                                      + modelId->asString() + "'");
    }

    const Json *inputs = body.find("inputs");
    if (!inputs || inputs->kind() != Json::Kind::Array
        || inputs->asArray().empty())
        return errorResponse(400,
                             "`inputs' must be a non-empty array of "
                             "rows");
    const std::size_t width = model->inputWidth();
    const Json::Array &rows = inputs->asArray();
    std::vector<float> flat;
    flat.reserve(rows.size() * width);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].kind() != Json::Kind::Array
            || rows[i].asArray().size() != width)
            return errorResponse(
                400, "row " + std::to_string(i) + " must be an array "
                     "of " + std::to_string(width) + " numbers");
        for (const Json &cell : rows[i].asArray()) {
            if (cell.kind() != Json::Kind::Int
                && cell.kind() != Json::Kind::Double)
                return errorResponse(400,
                                     "row " + std::to_string(i)
                                         + " holds a non-number");
            flat.push_back(static_cast<float>(cell.asNumber()));
        }
    }

    const InvokeOutcome outcome =
        model->invoke(flat.data(), rows.size());
    Json::Array decisions;
    decisions.reserve(outcome.decisions.size());
    for (const std::uint8_t decision : outcome.decisions)
        decisions.push_back(
            Json(static_cast<std::int64_t>(decision)));
    Json::Object out;
    out.emplace("model", Json(model->id()));
    out.emplace("decisions", Json(std::move(decisions)));
    out.emplace("certificate", outcome.certificate);
    return jsonResponse(200, Json(std::move(out)));
}

HttpResponse
Server::handleModels(const std::string &id)
{
    if (id.empty()) {
        Json::Array all;
        for (const std::shared_ptr<Model> &model : registry.list())
            all.push_back(model->describe());
        Json::Object out;
        out.emplace("models", Json(std::move(all)));
        return jsonResponse(200, Json(std::move(out)));
    }
    const std::shared_ptr<Model> model = registry.find(id);
    if (!model)
        return errorResponse(404, "no such model `" + id + "'");
    return jsonResponse(200, model->describe());
}

} // namespace mithra::service
